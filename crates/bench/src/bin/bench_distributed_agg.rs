//! Benchmark for the topology-aware multi-level exchange aggregation
//! (DESIGN.md §16) against the legacy two-level merge.
//!
//! For each simulated cluster size the same high-cardinality GROUP BY
//! runs twice over identical data: once with the legacy chunked
//! two-level merge (`MergeTreeShape::TwoLevel`, one exchange partition)
//! and once with the topology-derived multi-level tree plus the
//! hash-partitioned repartition exchange (`MergeTreeShape::Topology`,
//! eight partitions). SmartIndex and task reuse are off so both runs
//! are cold scans and the only difference is the merge tree.
//!
//! Reported per size: simulated critical-path response time, the three
//! per-level wire legs (leaf→stem, rack→DC, stem→master), and exact
//! answer parity — the workload uses only integer aggregates
//! (COUNT/SUM/MIN/MAX), which the merge contract keeps bit-identical
//! across tree shapes and partition counts. Results land in
//! `results/BENCH_distributed_agg.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks the node counts for CI.

use feisu_bench::{build_cluster, load_dataset};
use feisu_common::config::MergeTreeShape;
use feisu_core::engine::{ClusterSpec, QueryResult};
use feisu_workload::datasets::DatasetSpec;
use std::time::Instant;

const EXCHANGE_PARTITIONS: usize = 8;

/// One (cluster size, merge shape) measurement.
struct Run {
    sim_ms: f64,
    wall_ms: f64,
    wire_leaf_stem: u64,
    wire_rack_dc: u64,
    wire_stem_master: u64,
    result: QueryResult,
}

fn run_shape(
    nodes: u32,
    rows: usize,
    rows_per_block: usize,
    leaves_per_stem: usize,
    shape: MergeTreeShape,
    parts: usize,
    sql: &str,
) -> feisu_common::Result<Run> {
    let mut spec = ClusterSpec::with_nodes(nodes);
    spec.rows_per_block = rows_per_block;
    spec.config.leaves_per_stem = leaves_per_stem;
    // Cold scans: no cached index bits, no identical-task result reuse —
    // the merge tree is the only variable between the two shapes.
    spec.use_smartindex = false;
    spec.task_reuse = false;
    spec.config.merge_tree.shape = shape;
    spec.config.merge_tree.exchange_partitions = parts;
    let bench = build_cluster(spec)?;
    let mut t1 = DatasetSpec::t1(rows);
    // Slim fillers (scans decode real bytes) but a wide URL pool so the
    // GROUP BY stays high-cardinality — the regime where merge fan-in
    // dominates and the paper's multi-level aggregation pays off.
    t1.fields = 8;
    t1.url_pool = 10_000;
    load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
    let wall = Instant::now();
    let result = bench.cluster.query(sql, &bench.cred)?;
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    Ok(Run {
        sim_ms: result.response_time.as_millis_f64(),
        wall_ms,
        wire_leaf_stem: result.stats.wire_leaf_stem.0,
        wire_rack_dc: result.stats.wire_rack_dc.0,
        wire_stem_master: result.stats.wire_stem_master.0,
        result,
    })
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() -> feisu_common::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    // Smoke shrinks the clusters but also the stem fan-in cap, so the
    // two-level baseline still has real fan-in (at 16 nodes the default
    // 64-leaf cap would collapse it to a single all-dedup stem, which is
    // not the regime the paper's clusters run in).
    let (node_counts, rows_per_block, leaves_per_stem): (&[u32], usize, usize) = if smoke {
        (&[16, 32], 128, 8)
    } else {
        (&[256, 512, 1024], 256, 64)
    };
    // Two blocks per node keeps every leaf busy at every size while the
    // data volume scales linearly with the cluster.
    let blocks_per_node = 2usize;
    let sql = "SELECT url, COUNT(*), SUM(clicks), SUM(dwell_ms), MIN(clicks), MAX(clicks) \
               FROM t1 GROUP BY url";

    let mut entries = Vec::new();
    let mut table = Vec::new();
    for &nodes in node_counts {
        let rows = nodes as usize * blocks_per_node * rows_per_block;
        let two = run_shape(
            nodes,
            rows,
            rows_per_block,
            leaves_per_stem,
            MergeTreeShape::TwoLevel,
            1,
            sql,
        )?;
        let multi = run_shape(
            nodes,
            rows,
            rows_per_block,
            leaves_per_stem,
            MergeTreeShape::Topology,
            EXCHANGE_PARTITIONS,
            sql,
        )?;
        // Integer aggregates are bit-identical across merge-tree shapes
        // and partition counts — not merely value-equal.
        assert_eq!(
            two.result.batch, multi.result.batch,
            "{nodes} nodes: merge-tree shape changed the answer"
        );
        assert!(
            multi.wire_stem_master < two.wire_stem_master,
            "{nodes} nodes: multi-level must ship fewer stem→master bytes \
             ({} vs {})",
            multi.wire_stem_master,
            two.wire_stem_master
        );
        // At toy smoke sizes the extra tree level can cost more than its
        // parallelism recovers; the critical-path win is asserted at the
        // paper-scale node counts only.
        if !smoke {
            assert!(
                multi.sim_ms < two.sim_ms,
                "{nodes} nodes: multi-level must shorten the critical path \
                 ({} vs {} ms)",
                multi.sim_ms,
                two.sim_ms
            );
        }
        let speedup = two.sim_ms / multi.sim_ms;
        let wire_reduction = two.wire_stem_master as f64 / multi.wire_stem_master as f64;
        entries.push(format!(
            concat!(
                "    {{\"nodes\": {}, \"rows\": {}, \"groups_out\": {}, \"parity\": true, ",
                "\"two_level_sim_ms\": {}, \"multi_level_sim_ms\": {}, \"sim_speedup\": {}, ",
                "\"two_level_wall_ms\": {}, \"multi_level_wall_ms\": {}, ",
                "\"two_level_wire_leaf_stem\": {}, \"multi_level_wire_leaf_stem\": {}, ",
                "\"two_level_wire_rack_dc\": {}, \"multi_level_wire_rack_dc\": {}, ",
                "\"two_level_wire_stem_master\": {}, \"multi_level_wire_stem_master\": {}, ",
                "\"stem_master_wire_reduction\": {}}}"
            ),
            nodes,
            rows,
            multi.result.batch.rows(),
            json_f(two.sim_ms),
            json_f(multi.sim_ms),
            json_f(speedup),
            json_f(two.wall_ms),
            json_f(multi.wall_ms),
            two.wire_leaf_stem,
            multi.wire_leaf_stem,
            two.wire_rack_dc,
            multi.wire_rack_dc,
            two.wire_stem_master,
            multi.wire_stem_master,
            json_f(wire_reduction),
        ));
        table.push(vec![
            nodes.to_string(),
            format!("{}", multi.result.batch.rows()),
            format!("{:.3}", two.sim_ms),
            format!("{:.3}", multi.sim_ms),
            format!("{speedup:.2}x"),
            format!("{}", two.wire_stem_master),
            format!("{}", multi.wire_stem_master),
            format!("{wire_reduction:.2}x"),
        ]);
    }

    feisu_bench::print_series(
        "multi-level exchange aggregation vs two-level merge (high-cardinality GROUP BY)",
        &[
            "nodes",
            "groups",
            "2-level sim ms",
            "multi sim ms",
            "speedup",
            "2-level s→m bytes",
            "multi s→m bytes",
            "wire cut",
        ],
        &table,
    );

    let json = format!(
        "{{\n  \"bench\": \"distributed_agg\",\n  \"smoke\": {smoke},\n  \
         \"query\": \"{}\",\n  \"rows_per_block\": {rows_per_block},\n  \
         \"blocks_per_node\": {blocks_per_node},\n  \
         \"exchange_partitions\": {EXCHANGE_PARTITIONS},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        sql.replace('"', "\\\""),
        entries.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_distributed_agg.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_distributed_agg.json");
    Ok(())
}
