//! Figure 4 — number of repeatedly accessed (identical) columns per time
//! span, computed over a synthetic two-month trace matched to §IV-A.
//!
//! Paper shape: the count grows as the span widens (0.5 h → 8 h), showing
//! a small hot column set.

use feisu_common::SimDuration;
use feisu_workload::analyze::identical_columns_per_span;
use feisu_workload::trace::{generate_trace, TraceSpec};

fn main() {
    let trace = generate_trace(&TraceSpec {
        queries: 20_000,
        span: SimDuration::hours(24 * 60),
        similarity: 0.6,
        locality_theta: 0.9,
        ..TraceSpec::default()
    });
    let spans = [
        ("0.5h", SimDuration::minutes(30)),
        ("1h", SimDuration::hours(1)),
        ("2h", SimDuration::hours(2)),
        ("4h", SimDuration::hours(4)),
        ("8h", SimDuration::hours(8)),
    ];
    let rows: Vec<Vec<String>> = spans
        .iter()
        .map(|(label, span)| {
            let n = identical_columns_per_span(&trace, *span);
            vec![label.to_string(), format!("{n:.2}")]
        })
        .collect();
    feisu_bench::print_series(
        "Fig. 4: identical columns accessed per time span",
        &["span", "identical columns"],
        &rows,
    );
    println!("\nexpected shape: monotonically increasing with span (paper Fig. 4)");
}
