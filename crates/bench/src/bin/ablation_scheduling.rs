//! Ablation — locality-aware scheduling vs load-only vs random spread
//! (DESIGN.md §6.3).
//!
//! The paper's scheduler "always schedules a task to the leaf server that
//! contains the data"; this ablation quantifies what that buys: network
//! bytes and response time under the alternatives.

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_core::master::scheduler::Policy;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 60usize;
    let mut rows = Vec::new();
    for (label, policy) in [
        ("locality-aware (paper)", Policy::LocalityAware),
        ("load-only", Policy::LoadOnly),
        ("random spread", Policy::RandomSpread),
    ] {
        let mut spec = ClusterSpec::with_nodes(16);
        // Production-sized blocks (HDFS blocks are 128 MB): per-task byte
        // transfer is what locality saves, so blocks must be large enough
        // for the network stream to rival the disk stream.
        spec.rows_per_block = 65_536;
        spec.scheduling = policy;
        spec.task_reuse = false;
        spec.use_smartindex = false;
        let bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(524_288);
        t1.fields = 40;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut wl = ScanWorkload::new("t1", 12, 0.0, 0xAB1).with_count_ratio(0.0);
        let mut total = SimDuration::ZERO;
        for _ in 0..queries {
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            total += r.response_time;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", total.as_millis_f64() / queries as f64),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("ablation_scheduling.{label}"))?;
    }
    feisu_bench::print_series(
        "Ablation: task scheduling policy",
        &["policy", "mean response (ms)"],
        &rows,
    );
    println!("\nexpected: locality-aware <= load-only <= random (network hops dominate)");
    Ok(())
}
