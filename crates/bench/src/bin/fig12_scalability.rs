//! Figure 12 — response time vs cluster size on a fixed workload.
//!
//! Paper shape: response time falls near-linearly as nodes are added
//! (the scale-out design splits the same blocks over more leaves). The
//! paper sweeps 1000–4000 production nodes; the simulation sweeps a
//! proportional 8–64.

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let node_counts = [8u32, 16, 32, 64];
    let queries = 200usize;
    let mut rows = Vec::new();
    let mut first: Option<f64> = None;
    for nodes in node_counts {
        let mut spec = ClusterSpec::with_nodes(nodes);
        spec.rows_per_block = 512;
        spec.task_reuse = false;
        spec.use_smartindex = false; // isolate pure scale-out
        let mut bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(32_768);
        t1.fields = 40;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut wl = ScanWorkload::new("t1", 12, 0.0, 0xF12);
        let mut total = SimDuration::ZERO;
        for _ in 0..queries {
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            total += r.response_time;
        }
        let mean_ms = total.as_millis_f64() / queries as f64;
        let speedup = first.get_or_insert(mean_ms);
        rows.push(vec![
            bench.cluster.node_count().to_string(),
            format!("{mean_ms:.3}"),
            format!("{:.2}x", *speedup / mean_ms),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("fig12_scalability.{nodes}nodes"))?;
    }
    feisu_bench::print_series(
        "Fig. 12: mean response time vs node count (fixed workload)",
        &["nodes", "mean response (ms)", "speedup vs smallest"],
        &rows,
    );
    println!("\nexpected shape: near-linear improvement with node count (paper Fig. 12)");
    Ok(())
}
