//! Figure 12 — response time vs cluster size on a fixed workload.
//!
//! Paper shape: response time falls near-linearly as nodes are added
//! (the scale-out design splits the same blocks over more leaves). The
//! paper sweeps 1000–4000 production nodes; the simulation sweeps a
//! proportional 8–64.

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let node_counts = [8u32, 16, 32, 64];
    let queries = 200usize;
    let mut rows = Vec::new();
    let mut first: Option<f64> = None;
    for nodes in node_counts {
        let mut spec = ClusterSpec::with_nodes(nodes);
        spec.rows_per_block = 512;
        spec.task_reuse = false;
        spec.use_smartindex = false; // isolate pure scale-out
        let bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(32_768);
        t1.fields = 40;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut wl = ScanWorkload::new("t1", 12, 0.0, 0xF12);
        let mut total = SimDuration::ZERO;
        for _ in 0..queries {
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            total += r.response_time;
        }
        let mean_ms = total.as_millis_f64() / queries as f64;
        let speedup = first.get_or_insert(mean_ms);
        rows.push(vec![
            bench.cluster.node_count().to_string(),
            format!("{mean_ms:.3}"),
            format!("{:.2}x", *speedup / mean_ms),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("fig12_scalability.{nodes}nodes"))?;
    }
    feisu_bench::print_series(
        "Fig. 12: mean response time vs node count (fixed workload)",
        &["nodes", "mean response (ms)", "speedup vs smallest"],
        &rows,
    );
    println!("\nexpected shape: near-linear improvement with node count (paper Fig. 12)");

    // Wall-clock check for the leaf-task pool: same 64-node workload run
    // serially and with the pool. Simulated results must be bit-identical
    // (the pool's hard invariant); only the bench's real elapsed time may
    // change.
    let run = |threads: usize| -> feisu_common::Result<(f64, SimDuration, usize)> {
        let mut spec = ClusterSpec::with_nodes(64);
        spec.rows_per_block = 512;
        spec.task_reuse = false;
        spec.use_smartindex = false;
        spec.config.execution_threads = threads;
        let bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(32_768);
        t1.fields = 40;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut wl = ScanWorkload::new("t1", 12, 0.0, 0xF12);
        let start = std::time::Instant::now();
        let mut sim = SimDuration::ZERO;
        let mut tasks = 0usize;
        for _ in 0..queries {
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            sim += r.response_time;
            tasks += r.stats.tasks;
        }
        Ok((start.elapsed().as_secs_f64(), sim, tasks))
    };
    let (serial_wall, serial_sim, serial_tasks) = run(1)?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Force a real pool even on small hosts; speedup is bounded by `cores`.
    let threads = cores.max(2);
    let (pool_wall, pool_sim, pool_tasks) = run(threads)?;
    println!("\nparallel executor wall clock (64 nodes, {queries} queries, {cores} host cores):");
    println!("  execution_threads=1    {serial_wall:.3} s");
    println!(
        "  execution_threads={threads:<5}{pool_wall:.3} s  ({:.2}x speedup)",
        serial_wall / pool_wall.max(1e-9)
    );
    if cores == 1 {
        println!("  note: host exposes a single core; wall-clock speedup is capped at 1x here");
    }
    if (serial_sim, serial_tasks) == (pool_sim, pool_tasks) {
        println!("  simulated results identical: total {serial_sim}, {serial_tasks} tasks");
    } else {
        println!(
            "  WARNING: simulated results diverged! serial {serial_sim}/{serial_tasks} vs pool {pool_sim}/{pool_tasks}"
        );
        std::process::exit(1);
    }
    Ok(())
}
