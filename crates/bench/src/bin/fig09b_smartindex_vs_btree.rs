//! Figure 9(b) — SmartIndex vs a per-column B-tree index.
//!
//! Paper shape: "The query performance when using B-tree index remains
//! almost constant as more queries are processed, but it is not as
//! effective as SmartIndex because SmartIndex not only reduces I/O but
//! also the computation execution time for predicate evaluation."
//!
//! The comparison is honest about memory: both index kinds share the same
//! per-leaf budget. A B-tree entry costs ~12 B/row (sorted values +
//! row ids) versus a SmartIndex bitmap's 1 bit/row, so under the same
//! budget the B-tree working set keeps missing (rebuild = read + sort)
//! while thousands of SmartIndex bitmaps fit. Whole-query cost includes
//! the projection-column read common to all strategies.

use feisu_cluster::{CostModel, StorageMedium};
use feisu_common::hash::FxHashMap;
use feisu_common::rng::DetRng;
use feisu_common::{BlockId, ByteSize, SimDuration, SimInstant};
use feisu_format::{Block, Value};
use feisu_index::btree::BTreeColumnIndex;
use feisu_index::manager::IndexManager;
use feisu_index::rewrite::{probe_predicate, ProbeKind};
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::SimplePredicate;
use feisu_workload::datasets::{generate_chunk, DatasetSpec};
use std::collections::VecDeque;

fn build_blocks() -> Vec<Block> {
    let mut spec = DatasetSpec::t1(8192);
    spec.fields = 40;
    let schema = spec.schema();
    let mut blocks = Vec::new();
    let mut start = 0;
    let mut id = 0u64;
    while start < spec.rows {
        let cols = generate_chunk(&spec, start, 1024);
        let n = cols.first().map_or(0, |c| c.len());
        if n == 0 {
            break;
        }
        blocks.push(Block::new(BlockId(id), schema.clone(), cols).expect("block"));
        id += 1;
        start += n;
    }
    blocks
}

fn predicate_stream(n: usize) -> Vec<SimplePredicate> {
    let mut rng = DetRng::new(0x9B);
    // Fixed Zipf population, like the Fig. 9a workload.
    let population: Vec<SimplePredicate> = (0..600)
        .map(|_| {
            let rank = rng.zipf(16, 0.9);
            SimplePredicate {
                column: format!("c{}", (rank / 2) * 3 + (rank % 2)),
                op: match rng.next_below(6) {
                    0 => BinaryOp::Eq,
                    1 => BinaryOp::NotEq,
                    2 => BinaryOp::Lt,
                    3 => BinaryOp::LtEq,
                    4 => BinaryOp::Gt,
                    _ => BinaryOp::GtEq,
                },
                value: Value::Int64(rng.range_i64(0, 99)),
            }
        })
        .collect();
    (0..n)
        .map(|_| population[rng.zipf(population.len(), 0.9)].clone())
        .collect()
}

/// LRU cache of B-tree column indexes under a byte budget.
struct BTreeCache {
    budget: usize,
    used: usize,
    entries: FxHashMap<(u64, String), (BTreeColumnIndex, u64)>,
    lru: VecDeque<((u64, String), u64)>,
    stamp: u64,
}

impl BTreeCache {
    fn new(budget: usize) -> Self {
        BTreeCache {
            budget,
            used: 0,
            entries: FxHashMap::default(),
            lru: VecDeque::new(),
            stamp: 0,
        }
    }

    fn get(&mut self, key: &(u64, String)) -> bool {
        if let Some((_, stamp)) = self.entries.get_mut(key) {
            self.stamp += 1;
            *stamp = self.stamp;
            self.lru.push_back((key.clone(), self.stamp));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: (u64, String), idx: BTreeColumnIndex) {
        let size = idx.footprint();
        if size > self.budget {
            return;
        }
        if let Some((old, _)) = self.entries.remove(&key) {
            self.used -= old.footprint();
        }
        while self.used + size > self.budget {
            match self.lru.pop_front() {
                Some((k, s)) => {
                    let live = self.entries.get(&k).is_some_and(|(_, st)| *st == s);
                    if live {
                        let (old, _) = self.entries.remove(&k).expect("live");
                        self.used -= old.footprint();
                    }
                }
                None => break,
            }
        }
        self.stamp += 1;
        self.lru.push_back((key.clone(), self.stamp));
        self.used += size;
        self.entries.insert(key, (idx, self.stamp));
    }
}

fn main() {
    let blocks = build_blocks();
    let cost = CostModel::default();
    let rows = blocks[0].rows();
    let col_bytes = ByteSize((rows * 8) as u64);
    let col_read = |cost: &CostModel| cost.read(StorageMedium::Hdd, col_bytes);

    // Shared budget, scaled with the data like the Fig. 11 sweep.
    let budget_bytes = 512 * 1024usize;
    let smart = IndexManager::new(ByteSize(budget_bytes as u64), SimDuration::hours(72));
    let mut btrees = BTreeCache::new(budget_bytes);

    let n_queries = 4000usize;
    let bucket = 400usize;
    let preds = predicate_stream(n_queries);
    let mut series = Vec::new();
    let mut acc = [SimDuration::ZERO; 3];
    for (qi, p) in preds.iter().enumerate() {
        for b in &blocks {
            // Common cost: reading the projected column.
            let common = col_read(&cost);
            // --- no index: also read + evaluate the predicate column.
            acc[0] += common + col_read(&cost) + cost.predicate_eval(b.rows());
            // --- b-tree under budget: hit = in-memory walk + row-id
            //     materialization; miss = read column + sort + insert.
            let key = (b.id().raw(), p.column.clone());
            acc[1] += common;
            if btrees.get(&key) {
                acc[1] += cost.predicate_eval(64 + b.rows() / 2);
            } else {
                acc[1] += col_read(&cost) + cost.predicate_eval(b.rows() * 4);
                let col = b.column_by_name(&p.column).expect("column");
                btrees.insert(key, BTreeColumnIndex::build(col));
            }
            // --- smartindex under the same budget.
            acc[2] += common;
            let now = SimInstant(qi as u64);
            let (_, kind) = probe_predicate(Some(&smart), b, p, now).expect("probe");
            match kind {
                ProbeKind::Hit | ProbeKind::NegatedHit => {
                    acc[2] += cost.predicate_eval(b.rows() / 64);
                }
                _ => {
                    acc[2] += col_read(&cost) + cost.predicate_eval(b.rows());
                }
            }
        }
        if (qi + 1) % bucket == 0 {
            series.push(vec![
                format!("{}", qi + 1),
                format!("{:.3}", acc[0].as_millis_f64() / bucket as f64),
                format!("{:.3}", acc[1].as_millis_f64() / bucket as f64),
                format!("{:.3}", acc[2].as_millis_f64() / bucket as f64),
            ]);
            acc = [SimDuration::ZERO; 3];
        }
    }
    feisu_bench::print_series(
        "Fig. 9b: per-query time under one memory budget — no index / B-tree / SmartIndex",
        &["queries", "no-index (ms)", "b-tree (ms)", "smartindex (ms)"],
        &series,
    );
    println!(
        "\nexpected shape: B-tree roughly constant (budget keeps evicting its \
         ~12 B/row entries), SmartIndex (1 bit/row) warms past it and keeps \
         dropping (paper Fig. 9b)"
    );
}
