//! Multi-user Zipfian cache-mix benchmark: ghost admission on vs off.
//!
//! The trace models the production mix the cache hierarchy is built
//! for ("one-hit-wonders never evict hot blocks"): a handful of *hot*
//! multi-block tables drawn Zipf(0.99) carry ~96% of the traffic, and
//! the rest rotates through a pool of *large* scan-once tables — the
//! occasional archival report that reads a table bigger than the cache
//! slack and never returns. The SSD tier is sized to barely hold the
//! hot working set, so admission policy decides whether those one-shot
//! scans are allowed to flush it.
//!
//! Three identical clusters replay the *same* deterministic trace, four
//! users round-robin:
//!
//! - `admission_on`  — ghost/shadow-LRU admission (`Frequency`): a block
//!   only enters on its second sighting while its ghost entry is live.
//!   Hot blocks re-sight within the ghost window; scan-once tables age
//!   out of the bounded ghost before they ever return, so the hot set
//!   stays resident.
//! - `admission_off` — `Always`: every read is admitted, so each tail
//!   scan evicts hot bytes (LRU pollution) and hot queries keep paying
//!   HDD re-reads.
//! - `cache_off`     — no cache at all: the parity baseline.
//!
//! A short warm-up (three rounds over the hot tables, all configs
//! alike) precedes the measured phase; hit rates are measured-phase
//! deltas and p50/p95/p99 are computed from the measured per-query
//! simulated response times. The parity flag asserts every config
//! returned bit-identical answers — the cache is a pure accelerator.
//! Results land in `results/BENCH_cache_mix.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks tables/queries for CI.

use feisu_bench::{as_i64, build_cluster, load_dataset, print_series, Bench};
use feisu_common::config::CacheAdmission;
use feisu_common::rng::DetRng;
use feisu_common::{ByteSize, NodeId, Result};
use feisu_core::engine::ClusterSpec;
use feisu_storage::auth::Credential;
use feisu_storage::{CacheStats, CacheTier};
use feisu_workload::datasets::DatasetSpec;

const ZIPF_THETA: f64 = 0.99;
const USERS: usize = 4;
/// Fraction of measured queries that scan a tail (one-hit-wonder) table.
/// Kept under 5% so the p95 sample is a *hot* query: under ghost
/// admission that query is fully cache-served, while under
/// admit-everything it pays the HDD re-reads the tail flushes caused.
const TAIL_FRACTION: f64 = 0.04;

struct Shape {
    hot_tables: usize,
    tail_tables: usize,
    rows_hot: usize,
    /// Tail tables are bigger than a node's whole SSD tier: admitting
    /// one scan flushes the entire SSD-resident hot set, every time.
    rows_tail: usize,
    rows_per_block: usize,
    queries: usize,
}

impl Shape {
    fn new(smoke: bool) -> Shape {
        if smoke {
            Shape {
                hot_tables: 3,
                tail_tables: 8,
                rows_hot: 2048,
                rows_tail: 8192,
                rows_per_block: 128,
                queries: 160,
            }
        } else {
            Shape {
                hot_tables: 6,
                tail_tables: 24,
                rows_hot: 4096,
                rows_tail: 30720,
                rows_per_block: 128,
                queries: 1200,
            }
        }
    }

    fn tables(&self) -> usize {
        self.hot_tables + self.tail_tables
    }

    fn dataset(&self, i: usize) -> DatasetSpec {
        let rows = if i < self.hot_tables {
            self.rows_hot
        } else {
            self.rows_tail
        };
        // 12 fields keeps blocks compact; `dwell_ms` is the scanned column.
        let mut d = DatasetSpec::tiny(&format!("t{i}"), rows, 12);
        d.seed = 0x4A11 + i as u64;
        d
    }
}

/// The deterministic measured trace: (table index, user id). Hot tables
/// are drawn Zipf; tail visits rotate round-robin through a tail pool
/// wide enough that a tail table is visited at most a handful of times,
/// `tail_tables / TAIL_FRACTION` queries apart — dozens of ghost
/// registrations per node in between, far beyond the ghost window —
/// making them true one-hit wonders.
fn trace(shape: &Shape) -> Vec<(usize, usize)> {
    let mut rng = DetRng::new(0x2177_CACE);
    let mut tail_rr = 0usize;
    (0..shape.queries)
        .map(|_| {
            let table = if rng.chance(TAIL_FRACTION) {
                let t = shape.hot_tables + tail_rr % shape.tail_tables;
                tail_rr += 1;
                t
            } else {
                rng.zipf(shape.hot_tables, ZIPF_THETA)
            };
            (table, rng.next_below(USERS as u64) as usize)
        })
        .collect()
}

fn base_spec(shape: &Shape) -> ClusterSpec {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = shape.rows_per_block;
    // Isolate the data cache: repeats must really re-read their blocks.
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec
}

/// Loads every table; returns (hot working set, total working set) in
/// stored bytes.
fn load_tables(bench: &Bench, shape: &Shape) -> Result<(u64, u64)> {
    let (mut hot, mut total) = (0u64, 0u64);
    for i in 0..shape.tables() {
        let d = shape.dataset(i);
        load_dataset(bench, &d, &format!("/hdfs/mix/t{i}"))?;
        let desc = bench.cluster.catalog().table(&d.name)?;
        let bytes: u64 = desc.partitions[0]
            .blocks
            .iter()
            .map(|b| b.stored_size.0)
            .sum();
        total += bytes;
        if i < shape.hot_tables {
            hot += bytes;
        }
    }
    Ok((hot, total))
}

/// Leaf scheduling skews reads across nodes, so average shares
/// undersize the busiest node's tier. Measure real per-node demand on a
/// probe cluster with an effectively unbounded admit-everything cache:
/// scan every hot table once and take the hottest node's cached bytes.
fn max_node_hot_demand(shape: &Shape) -> Result<u64> {
    let mut spec = base_spec(shape);
    spec.config.cache.enabled = true;
    spec.config.cache.admission = CacheAdmission::Always;
    let bench = build_cluster(spec)?;
    load_tables(&bench, shape)?;
    for t in 0..shape.hot_tables {
        bench
            .cluster
            .query(&format!("SELECT SUM(dwell_ms) FROM t{t}"), &bench.cred)?;
    }
    let cache = bench.cluster.cache().expect("probe cache enabled");
    let demand = (0..bench.cluster.node_count() as u64)
        .map(|n| {
            cache.used_on(NodeId(n), CacheTier::Memory).0
                + cache.used_on(NodeId(n), CacheTier::Ssd).0
        })
        .max()
        .unwrap_or(1);
    Ok(demand.max(1))
}

/// Sizes the tiers from the measured per-node hot demand: the SSD tier
/// gets ~1.05x the busiest node's hot-set bytes — the hot set *barely*
/// fits, so under `Always` every scan-once admission evicts hot bytes —
/// the memory tier ~0.3x on top, and a ghost large enough to recall a
/// whole hot-table scan (a few blocks per node) but far smaller than the
/// tail registrations that pass between two visits to the same tail
/// table.
fn sized_spec(shape: &Shape, node_demand: u64, admission: Option<CacheAdmission>) -> ClusterSpec {
    let mut spec = base_spec(shape);
    if let Some(admission) = admission {
        spec.config.cache.enabled = true;
        spec.config.cache.admission = admission;
        spec.config.cache.ssd_capacity_per_node = ByteSize(node_demand * 21 / 20);
        spec.config.cache.mem_capacity_per_node = ByteSize((node_demand * 3 / 10).max(1));
        spec.config.cache.ghost_capacity = 8;
    }
    spec
}

/// Nearest-rank percentile of simulated response times, in milliseconds.
fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// Measured-phase delta of the counters the report uses.
fn stats_delta(after: CacheStats, before: CacheStats) -> CacheStats {
    CacheStats {
        mem_hits: after.mem_hits - before.mem_hits,
        ssd_hits: after.ssd_hits - before.ssd_hits,
        misses: after.misses - before.misses,
        rejected: after.rejected - before.rejected,
        ghost_registered: after.ghost_registered - before.ghost_registered,
        ghost_admissions: after.ghost_admissions - before.ghost_admissions,
        quota_rejections: after.quota_rejections - before.quota_rejections,
        mem_evictions: after.mem_evictions - before.mem_evictions,
        ssd_evictions: after.ssd_evictions - before.ssd_evictions,
        quota_evictions: after.quota_evictions - before.quota_evictions,
        ttl_expired: after.ttl_expired - before.ttl_expired,
        invalidations: after.invalidations - before.invalidations,
        promotions: after.promotions - before.promotions,
    }
}

struct RunOutcome {
    answers: Vec<i64>,
    json: String,
    row: Vec<String>,
}

fn run_config(
    name: &str,
    shape: &Shape,
    trace: &[(usize, usize)],
    node_demand: u64,
    admission: Option<CacheAdmission>,
) -> Result<RunOutcome> {
    let bench = build_cluster(sized_spec(shape, node_demand, admission))?;
    load_tables(&bench, shape)?;
    let creds: Vec<Credential> = (0..USERS)
        .map(|u| {
            let user = bench.cluster.register_user(&format!("mix{u}"));
            bench.cluster.grant_all(user);
            bench.cluster.login(user)
        })
        .collect::<Result<_>>()?;

    // Warm-up, identical in every config: three *consecutive* scans per
    // hot table, so under ghost admission each table's first scan
    // registers, the second recalls and admits while its ghost entries
    // are still live, and the third promotes.
    for t in 0..shape.hot_tables {
        for _ in 0..3 {
            bench
                .cluster
                .query(&format!("SELECT SUM(dwell_ms) FROM t{t}"), &creds[0])?;
        }
    }
    let cache = bench.cluster.cache().cloned();
    let warm_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();

    let mut answers = Vec::with_capacity(trace.len());
    let mut response_ns = Vec::with_capacity(trace.len());
    for &(table, user) in trace {
        let sql = format!("SELECT SUM(dwell_ms) FROM t{table}");
        let r = bench.cluster.query(&sql, &creds[user])?;
        answers.push(as_i64(&r.batch.column(0).value(0)));
        response_ns.push(r.response_time.as_nanos());
    }

    let stats = stats_delta(
        cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
        warm_stats,
    );
    let lookups = stats.hits() + stats.misses;
    let rate = |hits: u64| {
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    };
    response_ns.sort_unstable();
    let (p50, p95, p99) = (
        percentile_ms(&response_ns, 0.50),
        percentile_ms(&response_ns, 0.95),
        percentile_ms(&response_ns, 0.99),
    );

    let json = format!(
        concat!(
            "    {{\"name\": \"{}\", \"hit_rate\": {:.4}, \"mem_hit_rate\": {:.4}, ",
            "\"ssd_hit_rate\": {:.4}, \"mem_hits\": {}, \"ssd_hits\": {}, \"misses\": {}, ",
            "\"ghost_admissions\": {}, \"rejected\": {}, \"evictions\": {}, ",
            "\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}"
        ),
        name,
        rate(stats.hits()),
        rate(stats.mem_hits),
        rate(stats.ssd_hits),
        stats.mem_hits,
        stats.ssd_hits,
        stats.misses,
        stats.ghost_admissions,
        stats.rejected,
        stats.mem_evictions + stats.ssd_evictions,
        p50,
        p95,
        p99,
    );
    let row = vec![
        name.to_string(),
        format!("{:.1}%", rate(stats.hits()) * 100.0),
        format!("{:.1}%", rate(stats.mem_hits) * 100.0),
        format!("{:.1}%", rate(stats.ssd_hits) * 100.0),
        stats.ghost_admissions.to_string(),
        stats.rejected.to_string(),
        format!("{p50:.2}"),
        format!("{p95:.2}"),
        format!("{p99:.2}"),
    ];
    Ok(RunOutcome { answers, json, row })
}

fn main() -> Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let shape = Shape::new(smoke);
    let trace = trace(&shape);

    // Measure the working set once on a cache-less probe cluster so the
    // tier capacities are sized relative to the data, not hardcoded.
    let probe = build_cluster(base_spec(&shape))?;
    let (hot_set, working_set) = load_tables(&probe, &shape)?;
    drop(probe);
    let node_demand = max_node_hot_demand(&shape)?;

    let configs = [
        ("admission_on", Some(CacheAdmission::Frequency)),
        ("admission_off", Some(CacheAdmission::Always)),
        ("cache_off", None),
    ];
    let mut outcomes = Vec::new();
    for (name, admission) in configs {
        outcomes.push(run_config(name, &shape, &trace, node_demand, admission)?);
    }

    // Exact result parity: the cache may never change an answer.
    let parity = outcomes.iter().all(|o| o.answers == outcomes[0].answers);
    assert!(parity, "configs returned different query answers");

    print_series(
        "cache mix: ghost admission on vs off (Zipfian multi-user trace)",
        &[
            "config",
            "hit",
            "mem hit",
            "ssd hit",
            "ghost adm",
            "rejected",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        &outcomes.iter().map(|o| o.row.clone()).collect::<Vec<_>>(),
    );

    let json = format!(
        "{{\n  \"bench\": \"cache_mix\",\n  \"smoke\": {smoke},\n  \
         \"hot_tables\": {},\n  \"tail_tables\": {},\n  \"users\": {USERS},\n  \
         \"queries\": {},\n  \"zipf_theta\": {ZIPF_THETA},\n  \
         \"tail_fraction\": {TAIL_FRACTION},\n  \
         \"hot_set_bytes\": {hot_set},\n  \"working_set_bytes\": {working_set},\n  \
         \"parity\": {parity},\n  \"configs\": [\n{}\n  ]\n}}\n",
        shape.hot_tables,
        shape.tail_tables,
        shape.queries,
        outcomes
            .iter()
            .map(|o| o.json.clone())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_cache_mix.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_cache_mix.json");
    Ok(())
}
