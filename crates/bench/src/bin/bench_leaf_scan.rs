//! Wall-clock benchmark for the late-materialization leaf scan path.
//!
//! Compares two bench-local scan implementations over the same serialized
//! wide block:
//!
//! * **baseline** — the pre-optimization shape: full `Block::deserialize`
//!   of every column, per-bit predicate fill, and projection via
//!   `iter_ones().collect()` + `Column::take`.
//! * **optimized** — the shipped path: `Block::read_header` +
//!   `Block::deserialize_columns` of only the touched columns, the
//!   word-level `eval_predicate` kernel, and selection-word-driven
//!   `Column::filter_by_words` gathers.
//!
//! Configurations sweep selectivity (1%/10%/100%) and touched-column
//! count (1/3) on a 48-column block, plus a full-width 100% scan where
//! both paths must decode everything (regression guard). Results land in
//! `results/BENCH_leaf_scan.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks rows/iterations for CI.

use feisu_common::rng::DetRng;
use feisu_common::BlockId;
use feisu_exec::batch::RecordBatch;
use feisu_exec::expr::eval_predicate;
use feisu_format::{Block, Column, DataType, Field, Schema, Value};
use feisu_index::BitVec;
use feisu_obs::Histogram;
use feisu_sql::ast::Expr;
use feisu_sql::parser::parse_expr;
use std::time::Instant;

const COLUMNS: usize = 48;

struct Config {
    name: &'static str,
    selectivity_pct: u32,
    projection: Vec<String>,
}

fn wide_block(rows: usize) -> Block {
    let mut rng = DetRng::new(0x5eaf_5ca4);
    let mut fields = Vec::with_capacity(COLUMNS);
    let mut columns = Vec::with_capacity(COLUMNS);
    for i in 0..COLUMNS {
        let name = format!("c{i}");
        // Cycle Int64/Float64/Utf8 like the dataset filler columns; c0 is
        // the Int64 predicate column with uniform values in [0, 100).
        match i % 3 {
            0 => {
                fields.push(Field::new(&name, DataType::Int64, false));
                columns.push(Column::from_i64(
                    (0..rows).map(|_| rng.range_i64(0, 99)).collect(),
                ));
            }
            1 => {
                fields.push(Field::new(&name, DataType::Float64, false));
                columns.push(Column::from_f64(
                    (0..rows).map(|_| rng.next_f64()).collect(),
                ));
            }
            _ => {
                fields.push(Field::new(&name, DataType::Utf8, false));
                columns.push(Column::from_utf8(
                    (0..rows)
                        .map(|_| format!("tag{}", rng.next_below(64)))
                        .collect(),
                ));
            }
        }
    }
    Block::new(BlockId(1), Schema::new(fields), columns).expect("bench block")
}

/// Order-insensitive content checksum so both paths can be cross-checked.
fn checksum(columns: &[Column]) -> u64 {
    let mut acc = 0u64;
    for c in columns {
        for i in 0..c.len() {
            acc = acc.wrapping_add(match c.value(i) {
                Value::Int64(v) => v as u64,
                Value::Float64(v) => v.to_bits(),
                Value::Utf8(s) => s.len() as u64 ^ 0x9e37,
                Value::Bool(b) => b as u64,
                Value::Null => 0xdead,
            });
        }
    }
    acc
}

/// Pre-optimization scan: decode every column, per-bit fill, index-vector
/// gather with `Column::take`.
fn scan_baseline(bytes: &[u8], pred_cut: i64, projection: &[String]) -> (usize, u64) {
    let block = Block::deserialize(bytes).expect("baseline decode");
    let vals = block.column_by_name("c0").expect("pred column").i64_slice();
    let mut bits = BitVec::zeros(block.rows());
    for (i, v) in vals.iter().enumerate() {
        if *v < pred_cut {
            bits.set(i, true);
        }
    }
    let indices: Vec<usize> = bits.iter_ones().collect();
    let out: Vec<Column> = projection
        .iter()
        .map(|name| {
            block
                .column_by_name(name)
                .expect("projection")
                .take(&indices)
        })
        .collect();
    (indices.len(), checksum(&out))
}

/// Shipped scan: header peek, subset decode, word-level predicate kernel,
/// selection-word gather.
fn scan_optimized(bytes: &[u8], expr: &Expr, projection: &[String]) -> (usize, u64) {
    let (_, full_schema, _) = Block::read_header(bytes).expect("header");
    let mut needed: Vec<&str> = projection.iter().map(|s| s.as_str()).collect();
    let mut cols = Vec::new();
    expr.columns(&mut cols);
    for c in &cols {
        if !needed.contains(&c.as_str()) && full_schema.index_of(c).is_some() {
            needed.push(c);
        }
    }
    let block = Block::deserialize_columns(bytes, &needed).expect("subset decode");
    // The shipped kernel reads block columns in place; mirror that by
    // handing eval_predicate only the predicate columns, not a clone of
    // the whole decoded block.
    let pred_fields: Vec<Field> = block
        .schema()
        .fields()
        .iter()
        .filter(|f| cols.iter().any(|c| c == &f.name))
        .cloned()
        .collect();
    let pred_cols: Vec<Column> = pred_fields
        .iter()
        .map(|f| block.column_by_name(&f.name).expect("pred column").clone())
        .collect();
    let batch = RecordBatch::new(Schema::new(pred_fields), pred_cols).expect("bench batch");
    let bits = eval_predicate(&batch, expr).expect("predicate kernel");
    let out: Vec<Column> = projection
        .iter()
        .map(|name| {
            block
                .column_by_name(name)
                .expect("projection")
                .filter_by_words(bits.words())
        })
        .collect();
    (bits.count_ones(), checksum(&out))
}

/// Times `iters` runs: returns the best wall-clock milliseconds, a
/// [`Histogram`] of every iteration's nanoseconds (for tail
/// percentiles), and the last result for cross-checking.
fn time_ms<F: FnMut() -> (usize, u64)>(iters: usize, mut f: F) -> (f64, Histogram, (usize, u64)) {
    let hist = Histogram::new(Histogram::default_time_boundaries());
    let mut best = f64::INFINITY;
    let mut result = (0, 0);
    for _ in 0..iters {
        let t = Instant::now();
        result = f();
        let ns = t.elapsed().as_nanos() as u64;
        hist.observe(ns);
        best = best.min(ns as f64 / 1e6);
    }
    (best, hist, result)
}

/// `Histogram` quantile in milliseconds.
fn q_ms(hist: &Histogram, q: f64) -> f64 {
    hist.quantile(q) as f64 / 1e6
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (rows, iters) = if smoke { (2048, 2) } else { (65536, 9) };

    let block = wide_block(rows);
    let bytes = block.serialize();
    let all: Vec<String> = (0..COLUMNS).map(|i| format!("c{i}")).collect();

    let configs = vec![
        Config {
            name: "sel1_touch1",
            selectivity_pct: 1,
            projection: vec!["c3".into()],
        },
        Config {
            name: "sel1_touch3",
            selectivity_pct: 1,
            projection: vec!["c3".into(), "c4".into(), "c5".into()],
        },
        Config {
            name: "sel10_touch1",
            selectivity_pct: 10,
            projection: vec!["c3".into()],
        },
        Config {
            name: "sel10_touch3",
            selectivity_pct: 10,
            projection: vec!["c3".into(), "c4".into(), "c5".into()],
        },
        Config {
            name: "sel100_touch1",
            selectivity_pct: 100,
            projection: vec!["c3".into()],
        },
        Config {
            name: "sel100_touch3",
            selectivity_pct: 100,
            projection: vec!["c3".into(), "c4".into(), "c5".into()],
        },
        Config {
            name: "sel100_fullwidth",
            selectivity_pct: 100,
            projection: all,
        },
    ];

    let mut entries = Vec::new();
    let mut rows_out_table = Vec::new();
    for cfg in &configs {
        let cut = cfg.selectivity_pct as i64; // values uniform in [0, 100)
        let expr = parse_expr(&format!("c0 < {cut}")).expect("bench predicate");
        let (base_ms, base_hist, base_res) =
            time_ms(iters, || scan_baseline(&bytes, cut, &cfg.projection));
        let (opt_ms, opt_hist, opt_res) =
            time_ms(iters, || scan_optimized(&bytes, &expr, &cfg.projection));
        assert_eq!(
            base_res, opt_res,
            "{}: baseline and optimized scans disagree",
            cfg.name
        );
        let speedup = base_ms / opt_ms;
        entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"selectivity_pct\": {}, \"touched\": {}, ",
                "\"baseline_ms\": {}, \"optimized_ms\": {}, \"speedup\": {}, ",
                "\"baseline_p50_ms\": {}, \"baseline_p95_ms\": {}, \"baseline_p99_ms\": {}, ",
                "\"optimized_p50_ms\": {}, \"optimized_p95_ms\": {}, \"optimized_p99_ms\": {}}}"
            ),
            cfg.name,
            cfg.selectivity_pct,
            cfg.projection.len(),
            json_f(base_ms),
            json_f(opt_ms),
            json_f(speedup),
            json_f(q_ms(&base_hist, 0.50)),
            json_f(q_ms(&base_hist, 0.95)),
            json_f(q_ms(&base_hist, 0.99)),
            json_f(q_ms(&opt_hist, 0.50)),
            json_f(q_ms(&opt_hist, 0.95)),
            json_f(q_ms(&opt_hist, 0.99)),
        ));
        rows_out_table.push(vec![
            cfg.name.to_string(),
            format!("{}", base_res.0),
            format!("{base_ms:.3}"),
            format!("{opt_ms:.3}"),
            format!("{speedup:.2}x"),
        ]);
    }

    feisu_bench::print_series(
        "leaf scan: baseline vs late-materialization",
        &[
            "config",
            "rows out",
            "baseline ms",
            "optimized ms",
            "speedup",
        ],
        &rows_out_table,
    );

    let json = format!(
        "{{\n  \"bench\": \"leaf_scan\",\n  \"rows\": {rows},\n  \"columns\": {COLUMNS},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_leaf_scan.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_leaf_scan.json");
}
