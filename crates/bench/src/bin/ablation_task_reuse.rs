//! Ablation — identical-task result reuse in the job manager
//! (DESIGN.md §6.5).
//!
//! "Job manager tries to reuse other running job's task result if tasks
//! are identical" (§III-C). This ablation replays a bursty dashboard-like
//! workload (many near-identical statements close together) with the
//! reuse cache on and off.

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 600usize;
    let mut rows = Vec::new();
    for (label, reuse) in [("reuse on (paper)", true), ("reuse off", false)] {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 1024;
        spec.task_reuse = reuse;
        spec.use_smartindex = false; // isolate the job-manager effect
        let bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(8192);
        t1.fields = 60;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        // Dashboards re-fire a small fixed set of statements.
        let mut wl = ScanWorkload::new("t1", 8, 1.1, 0xAB2);
        let statements: Vec<String> = (0..10).map(|_| wl.next_query()).collect();
        let mut total = SimDuration::ZERO;
        let mut reused = 0usize;
        for q in 0..queries {
            // Sub-TTL spacing: results stay fresh enough to reuse.
            bench.cluster.advance_time(SimDuration::secs(5));
            let sql = &statements[q % statements.len()];
            let r = bench.cluster.query(sql, &bench.cred)?;
            total += r.response_time;
            reused += r.stats.reused_tasks;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", total.as_millis_f64() / queries as f64),
            reused.to_string(),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("ablation_task_reuse.{label}"))?;
    }
    feisu_bench::print_series(
        "Ablation: job-manager identical-task result reuse",
        &["configuration", "mean response (ms)", "tasks reused"],
        &rows,
    );
    println!("\nexpected: reuse slashes response for repeated statements");
    Ok(())
}
