//! Benchmark for cost-based join reordering at lowering time.
//!
//! Builds a 3-table star: two dimension tables `d1`/`d2` (unique keys)
//! and a Zipfian fact table `f` whose keys reference both dimensions.
//! The query lists the dimensions first, so the syntactic left-deep
//! order starts with a `d1 x d2` cross product that the WHERE equalities
//! only collapse one join later. Two identical clusters run the same
//! statement: one with `FeisuConfig.optimizer.join_reorder` switched
//! off (the rule pipeline stays on in both, so the equalities still
//! become hash-join keys), one with the cost-based search enabled,
//! which puts the fact on the build side first using the ingest-time
//! table stats.
//!
//! Exact answer parity is asserted (integer SUM), and both simulated
//! response time and wall-clock are reported; results land in
//! `results/BENCH_join_order.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks the tables for CI.

use feisu_common::rng::DetRng;
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryResult};
use feisu_format::{DataType, Field, Schema, Value};
use feisu_storage::auth::Credential;
use std::time::Instant;

fn dim_schema() -> Schema {
    Schema::new(vec![Field::new("k", DataType::Int64, false)])
}

fn fact_schema() -> Schema {
    Schema::new(vec![
        Field::new("k1", DataType::Int64, false),
        Field::new("k2", DataType::Int64, false),
        Field::new("v", DataType::Int64, false),
    ])
}

fn build_cluster(
    dim_rows: usize,
    fact_rows: usize,
    join_reorder: bool,
) -> (FeisuCluster, Credential) {
    let mut spec = ClusterSpec::small();
    spec.config.optimizer.join_reorder = join_reorder;
    // Cold runs on every iteration: no cached index bits, no
    // identical-task result reuse, so the only difference between the
    // clusters is the join order the lowering chose.
    spec.use_smartindex = false;
    spec.task_reuse = false;
    let cluster = FeisuCluster::new(spec).expect("cluster");
    let user = cluster.register_user("bencher");
    cluster.grant_all(user);
    let cred = cluster.login(user).expect("login");

    // SSD-backed kv domain: scans are cheap, so the master-side join
    // work the reordering saves is what the response time measures.
    for dim in ["d1", "d2"] {
        cluster
            .create_table(dim, dim_schema(), &format!("/kv/bench/{dim}"), &cred)
            .expect("create dim");
        let rows: Vec<Vec<Value>> = (0..dim_rows as i64)
            .map(|i| vec![Value::Int64(i)])
            .collect();
        cluster.ingest_rows(dim, rows, &cred).expect("ingest dim");
    }
    cluster
        .create_table("f", fact_schema(), "/kv/bench/f", &cred)
        .expect("create fact");
    // Zipfian foreign keys: hot dimension rows dominate, as in real
    // click/star workloads. Chunked ingest bounds peak buffer memory.
    let mut rng = DetRng::new(0x10_0e_0e_d0);
    let chunk = 8192;
    let mut written = 0usize;
    while written < fact_rows {
        let n = chunk.min(fact_rows - written);
        let rows: Vec<Vec<Value>> = (written..written + n)
            .map(|i| {
                vec![
                    Value::Int64(rng.zipf(dim_rows, 0.9) as i64),
                    Value::Int64(rng.zipf(dim_rows, 0.9) as i64),
                    Value::Int64(i as i64),
                ]
            })
            .collect();
        cluster.ingest_rows("f", rows, &cred).expect("ingest fact");
        written += n;
    }
    (cluster, cred)
}

/// Runs `iters` cold queries; returns the (constant) simulated response
/// time in ms, best wall-clock ms, and the last result.
fn run(
    cluster: &FeisuCluster,
    cred: &Credential,
    sql: &str,
    iters: usize,
) -> (f64, f64, QueryResult) {
    let mut best = f64::INFINITY;
    let mut sim_ms = 0.0;
    let mut last = None;
    for i in 0..iters {
        let t = Instant::now();
        let r = cluster.query(sql, cred).expect("bench query");
        best = best.min(t.elapsed().as_nanos() as f64 / 1e6);
        if i == 0 {
            sim_ms = r.response_time.as_millis_f64();
        } else {
            assert_eq!(
                sim_ms,
                r.response_time.as_millis_f64(),
                "simulated time must be reuse-free and deterministic"
            );
        }
        last = Some(r);
    }
    (sim_ms, best, last.expect("at least one iter"))
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (dim_rows, fact_rows, iters) = if smoke {
        (300, 3_000, 2)
    } else {
        (1_500, 30_000, 3)
    };

    let (syn, syn_cred) = build_cluster(dim_rows, fact_rows, false);
    let (opt, opt_cred) = build_cluster(dim_rows, fact_rows, true);

    // Dims listed first: the syntactic order crosses d1 x d2 before the
    // fact arrives to collapse it.
    let sql = "SELECT SUM(f.v) AS s FROM d1, d2, f WHERE f.k1 = d1.k AND f.k2 = d2.k";

    let (syn_sim, syn_wall, syn_res) = run(&syn, &syn_cred, sql, iters);
    let (opt_sim, opt_wall, opt_res) = run(&opt, &opt_cred, sql, iters);

    // Integer SUM: the answers must match exactly, not approximately.
    assert_eq!(
        syn_res.batch, opt_res.batch,
        "join reordering changed the answer"
    );
    let reordered = opt
        .metrics()
        .counter("feisu.optimizer.joins_reordered")
        .get();
    assert!(reordered > 0, "cost-based search never reordered");
    assert_eq!(
        syn.metrics()
            .counter("feisu.optimizer.joins_reordered")
            .get(),
        0,
        "kill switch must disable reordering"
    );
    // The chosen order, straight from EXPLAIN's trailer.
    let explain = opt.explain(sql, &opt_cred).expect("explain");
    let join_order = explain
        .lines()
        .find(|l| l.starts_with("JoinOrder: "))
        .unwrap_or("JoinOrder: <missing>")
        .trim_start_matches("JoinOrder: ")
        .to_string();

    let sim_speedup = syn_sim / opt_sim;
    let wall_speedup = syn_wall / opt_wall;
    feisu_bench::print_series(
        "join-order search: syntactic vs cost-chosen (3-way Zipfian star)",
        &[
            "config",
            "rows out",
            "syntactic sim ms",
            "reordered sim ms",
            "sim speedup",
            "wall speedup",
        ],
        &[vec![
            "star_3way".into(),
            format!("{}", opt_res.batch.rows()),
            format!("{syn_sim:.3}"),
            format!("{opt_sim:.3}"),
            format!("{sim_speedup:.2}x"),
            format!("{wall_speedup:.2}x"),
        ]],
    );
    println!("chosen order: {join_order}");

    let json = format!(
        "{{\n  \"bench\": \"join_order\",\n  \"dim_rows\": {dim_rows},\n  \
         \"fact_rows\": {fact_rows},\n  \"iters\": {iters},\n  \"smoke\": {smoke},\n  \
         \"configs\": [\n    {{\"name\": \"star_3way\", \"rows_out\": {}, \
         \"results_match\": true, \"joins_reordered\": {reordered}, \
         \"join_order\": \"{join_order}\", \
         \"syntactic_sim_ms\": {}, \"reordered_sim_ms\": {}, \"sim_speedup\": {}, \
         \"syntactic_wall_ms\": {}, \"reordered_wall_ms\": {}, \"wall_speedup\": {}}}\n  ]\n}}\n",
        opt_res.batch.rows(),
        json_f(syn_sim),
        json_f(opt_sim),
        json_f(sim_speedup),
        json_f(syn_wall),
        json_f(opt_wall),
        json_f(wall_speedup),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_join_order.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_join_order.json");
}
