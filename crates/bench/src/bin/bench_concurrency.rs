//! Wall-clock concurrency benchmark: N client threads over one shared
//! cluster.
//!
//! The shared-engine refactor made the whole master→stem→leaf tree
//! `&self`, so many clients can admit and execute queries at once. This
//! binary measures what that buys: a fixed production-mix workload is
//! split round-robin over 1/2/4/8 client threads, each with its own
//! registered user and [`QuerySession`], and we report wall-clock
//! queries/sec per client count. `execution_threads` is pinned to 1 so
//! client threads — not the leaf pool — are the only parallelism axis;
//! any speedup comes from queries genuinely overlapping inside the
//! shared engine.
//!
//! Leaf service time is emulated in real time (`leaf_wait_dilation`):
//! each leaf task blocks its client thread for its *simulated* duration,
//! the way a real leaf RPC occupies a remote device. Those waits carry
//! the measurement — under the old one-query-at-a-time engine they
//! could not overlap (throughput would be flat in client count), while
//! the shared `&self` engine lets every client's leaf waits proceed
//! concurrently. This keeps the benchmark meaningful on any core count,
//! including single-core CI runners where CPU-bound work alone cannot
//! speed up.
//!
//! Each client count gets a fresh cluster (cold caches every time) so
//! the configurations are comparable. Results land in
//! `results/BENCH_concurrency.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks rows/queries for CI.

use feisu_bench::{build_cluster, load_dataset, Bench, ScanWorkload};
use feisu_core::engine::ClusterSpec;
use feisu_core::master::QuerySession;
use feisu_workload::datasets::DatasetSpec;
use std::sync::Barrier;
use std::time::Instant;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Builds the fresh shared cluster one configuration runs against.
fn fresh_cluster(rows: usize) -> feisu_common::Result<Bench> {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = 1024;
    // Client threads are the parallelism axis under test: give each
    // query a serial leaf pool so overlap between *queries* is the only
    // source of wall-clock speedup.
    spec.config.execution_threads = 1;
    // Emulate leaf RPC service time in real time so query overlap is
    // what the wall clock measures (see module docs).
    spec.config.leaf_wait_dilation = 1.0;
    let bench = build_cluster(spec)?;
    let mut t1 = DatasetSpec::t1(rows);
    t1.fields = 128; // workload predicates reach up to c59
    load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
    Ok(bench)
}

/// Runs the workload split round-robin over `clients` sessions and
/// returns the wall-clock milliseconds from the start barrier to the
/// last client finishing.
fn run_clients(bench: &Bench, queries: &[String], clients: usize) -> f64 {
    // Sessions (and their users) are opened serially before any thread
    // spawns, so session ids — and therefore query ids — are
    // deterministic regardless of thread scheduling.
    let sessions: Vec<QuerySession<'_>> = (0..clients)
        .map(|i| {
            let user = bench.cluster.register_user(&format!("client{i}"));
            bench.cluster.grant_all(user);
            let cred = bench.cluster.login(user).expect("client login");
            bench.cluster.session(cred)
        })
        .collect();

    let barrier = Barrier::new(clients + 1);
    let mut start = Instant::now();
    std::thread::scope(|s| {
        for (i, session) in sessions.iter().enumerate() {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for sql in queries.iter().skip(i).step_by(clients) {
                    session.query(sql).expect("bench query failed");
                }
            });
        }
        barrier.wait();
        start = Instant::now();
        // Scope exit joins every client; elapsed then covers the
        // slowest one.
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        bench.cluster.guard().inflight(),
        0,
        "all admission permits must be released after the run"
    );
    wall_ms
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() -> feisu_common::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (rows, query_count) = if smoke { (4096, 48) } else { (32768, 480) };

    // One fixed statement list shared by every client count. Low skew
    // over a large predicate population keeps task-reuse hits rare, so
    // each query performs real scan work instead of a cache lookup.
    let mut workload = ScanWorkload::new("t1", 40, 0.2, 0xC0C0).with_population(4000);
    let queries: Vec<String> = (0..query_count).map(|_| workload.next_query()).collect();

    let mut entries = Vec::new();
    let mut table = Vec::new();
    let mut baseline_qps = 0.0;
    for &clients in &CLIENT_COUNTS {
        let bench = fresh_cluster(rows)?;
        let wall_ms = run_clients(&bench, &queries, clients);
        let qps = query_count as f64 / (wall_ms / 1e3);
        if clients == 1 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps;
        // Per-query latency percentiles from the cluster's own
        // `feisu.query.response_ns` histogram. Simulated time, so they
        // are near-identical across client counts: this workload's hot
        // predicates race on the shared caches, so hit attribution (and
        // with it a tail sample or two) may shift with interleaving.
        let snap = bench.cluster.metrics().snapshot();
        let h = snap
            .histograms
            .get("feisu.query.response_ns")
            .expect("response histogram populated");
        let (p50, p95, p99) = (h.p50 as f64 / 1e6, h.p95 as f64 / 1e6, h.p99 as f64 / 1e6);
        entries.push(format!(
            concat!(
                "    {{\"clients\": {}, \"queries\": {}, \"wall_ms\": {}, ",
                "\"qps\": {}, \"speedup\": {}, ",
                "\"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}"
            ),
            clients,
            query_count,
            json_f(wall_ms),
            json_f(qps),
            json_f(speedup),
            json_f(p50),
            json_f(p95),
            json_f(p99),
        ));
        table.push(vec![
            clients.to_string(),
            format!("{wall_ms:.1}"),
            format!("{qps:.1}"),
            format!("{speedup:.2}x"),
            format!("{p50:.2}"),
            format!("{p95:.2}"),
            format!("{p99:.2}"),
        ]);
    }

    feisu_bench::print_series(
        "shared-engine concurrency: wall-clock throughput by client count",
        &[
            "clients", "wall ms", "qps", "speedup", "p50 ms", "p95 ms", "p99 ms",
        ],
        &table,
    );

    let json = format!(
        "{{\n  \"bench\": \"concurrency\",\n  \"rows\": {rows},\n  \
         \"queries\": {query_count},\n  \"execution_threads\": 1,\n  \
         \"smoke\": {smoke},\n  \"clients\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_concurrency.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_concurrency.json");
    Ok(())
}
