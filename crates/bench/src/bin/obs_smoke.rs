//! Observability-plane smoke runner for CI.
//!
//! Builds a small cluster, runs a handful of real queries, then proves
//! the introspection surface end to end: `SELECT`s over
//! `system.queries` / `system.nodes` through the normal plan path, and
//! a Chrome-trace export of one query's span tree written to
//! `results/TRACE_smoke.json` (load it in `chrome://tracing` or
//! Perfetto).

use feisu_bench::{build_cluster, load_dataset, Bench};
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = 1024;
    let bench: Bench = build_cluster(spec)?;
    load_dataset(&bench, &DatasetSpec::t1(4096), "/hdfs/bench/t1")?;

    // A few real queries so the log and windows have content.
    let mut traced = None;
    for v in [10, 40, 70] {
        let r = bench.cluster.query(
            &format!("SELECT COUNT(*) FROM t1 WHERE c0 > {v}"),
            &bench.cred,
        )?;
        traced = Some(r);
    }

    let log = bench
        .cluster
        .query(
            "SELECT query_id, user, outcome, response_ns, wire_leaf_stem_bytes \
             FROM system.queries",
            &bench.cred,
        )?
        .batch;
    assert!(log.rows() >= 3, "query log rows: {}", log.rows());
    println!("system.queries -> {} rows", log.rows());

    let nodes = bench
        .cluster
        .query(
            "SELECT node, alive, failed, feisu_slots FROM system.nodes",
            &bench.cred,
        )?
        .batch;
    assert!(nodes.rows() > 0, "system.nodes must list the topology");
    println!("system.nodes   -> {} rows", nodes.rows());

    let trace = traced.expect("at least one traced query").chrome_trace();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/TRACE_smoke.json", &trace).expect("write trace json");
    println!(
        "trace          -> results/TRACE_smoke.json ({} bytes)",
        trace.len()
    );
    Ok(())
}
