//! §VII production statistics — a mixed trace through a live cluster.
//!
//! Paper claims: ~6000 queries/day across >100 products; "more than 93%
//! \[of\] queries focus on those data sets \[that\] are less than 200 TB.
//! And, their response times are always below 20 seconds." This binary
//! replays a trace with the Fig. 8 statement mix and reports the
//! response-time distribution plus job-manager/SmartIndex effectiveness.

use feisu_bench::{build_cluster, load_dataset};
use feisu_common::{SimDuration, UserId};
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;
use feisu_workload::trace::{generate_trace, TraceSpec};

fn main() -> feisu_common::Result<()> {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = 1024;
    let mut bench = build_cluster(spec)?;
    let mut t1 = DatasetSpec::t1(8192);
    t1.fields = 128; // trace predicates target c0..c39
    load_dataset(&bench, &t1, "/hdfs/prod/t1")?;

    let trace = generate_trace(&TraceSpec {
        queries: 1500,
        span: SimDuration::hours(6),
        similarity: 0.65,
        locality_theta: 0.9,
        column_pool: 40,
        tables: vec!["t1".into()],
        ..TraceSpec::default()
    });

    let mut times: Vec<f64> = Vec::new();
    let mut failures = 0usize;
    let wall_start = std::time::Instant::now();
    for (i, q) in trace.iter().enumerate() {
        if i % 500 == 0 {
            feisu_bench::relogin(&mut bench)?;
        }
        bench.cluster.advance_time(SimDuration::secs(2));
        match bench.cluster.query(&q.sql, &bench.cred) {
            Ok(r) => times.push(r.response_time.as_millis_f64()),
            Err(_) => failures += 1,
        }
    }
    let wall = wall_start.elapsed().as_secs_f64();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| times[((times.len() - 1) as f64 * p) as usize];
    let rows = vec![
        vec!["queries".into(), times.len().to_string()],
        vec!["failures".into(), failures.to_string()],
        vec!["p50 (ms)".into(), format!("{:.3}", pct(0.50))],
        vec!["p90 (ms)".into(), format!("{:.3}", pct(0.90))],
        vec!["p93 (ms)".into(), format!("{:.3}", pct(0.93))],
        vec!["p99 (ms)".into(), format!("{:.3}", pct(0.99))],
        vec!["max (ms)".into(), format!("{:.3}", pct(1.0))],
        vec!["wall clock (s)".into(), format!("{wall:.3}")],
    ];
    feisu_bench::print_series(
        "§VII: production-mix response distribution",
        &["metric", "value"],
        &rows,
    );

    let idx = bench.cluster.index_stats();
    let (reuse_hits, reuse_misses) = bench.cluster.jobs().reuse_stats();
    println!(
        "\nSmartIndex: {} hits / {} misses ({:.0}% hit) | task reuse: {} hits / {} misses",
        idx.hits,
        idx.misses,
        (1.0 - idx.miss_ratio()) * 100.0,
        reuse_hits,
        reuse_misses
    );
    println!(
        "history recorded {} statements for personalization",
        bench.cluster.history().count(UserId(1))
    );
    feisu_bench::dump_metrics(&bench, "production_mix")?;
    println!(
        "\npaper: 93% of (sub-200TB) queries answer below 20 s on 4000 nodes; \
         the scaled p93 above plays that role here"
    );
    Ok(())
}
