//! Criterion microbenches: the SmartIndex fast path vs the work it
//! replaces, in real (not simulated) time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use feisu_common::{BlockId, ByteSize, SimDuration, SimInstant};
use feisu_format::{Block, Column, DataType, Field, Schema, Value};
use feisu_index::btree::BTreeColumnIndex;
use feisu_index::manager::IndexManager;
use feisu_index::rewrite::probe_predicate;
use feisu_index::smart::{scan_evaluate, SmartIndex};
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::SimplePredicate;

fn block(rows: usize) -> Block {
    let mut rng = feisu_common::rng::DetRng::new(42);
    let schema = Schema::new(vec![Field::new("x", DataType::Int64, true)]);
    let values: Vec<Value> = (0..rows)
        .map(|_| {
            if rng.chance(0.05) {
                Value::Null
            } else {
                Value::Int64(rng.range_i64(0, 999))
            }
        })
        .collect();
    let col = Column::from_values(DataType::Int64, &values).unwrap();
    Block::new(BlockId(0), schema, vec![col]).unwrap()
}

fn pred(v: i64) -> SimplePredicate {
    SimplePredicate {
        column: "x".into(),
        op: BinaryOp::Gt,
        value: Value::Int64(v),
    }
}

fn bench_smartindex(c: &mut Criterion) {
    let b = block(65_536);
    let p = pred(500);

    c.bench_function("scan_evaluate_64k", |bench| {
        let col = b.column_by_name("x").unwrap();
        bench.iter(|| scan_evaluate(col, &p).unwrap());
    });

    c.bench_function("smartindex_build_64k", |bench| {
        bench.iter(|| SmartIndex::build(&b, &p, SimInstant(0), false).unwrap());
    });

    c.bench_function("smartindex_probe_hit_64k", |bench| {
        let m = IndexManager::new(ByteSize::mib(16), SimDuration::hours(72));
        m.insert(
            SmartIndex::build(&b, &p, SimInstant(0), false).unwrap(),
            SimInstant(0),
        );
        bench.iter(|| probe_predicate(Some(&m), &b, &p, SimInstant(1)).unwrap());
    });

    c.bench_function("smartindex_negated_hit_64k", |bench| {
        let m = IndexManager::new(ByteSize::mib(16), SimDuration::hours(72));
        m.insert(
            SmartIndex::build(&b, &p, SimInstant(0), false).unwrap(),
            SimInstant(0),
        );
        let neg = SimplePredicate {
            column: "x".into(),
            op: BinaryOp::LtEq,
            value: Value::Int64(500),
        };
        bench.iter(|| probe_predicate(Some(&m), &b, &neg, SimInstant(1)).unwrap());
    });

    c.bench_function("btree_build_64k", |bench| {
        let col = b.column_by_name("x").unwrap();
        bench.iter(|| BTreeColumnIndex::build(col));
    });

    c.bench_function("btree_lookup_64k", |bench| {
        let col = b.column_by_name("x").unwrap();
        let idx = BTreeColumnIndex::build(col);
        bench.iter(|| idx.lookup(BinaryOp::Gt, &Value::Int64(500)).unwrap());
    });

    c.bench_function("manager_insert_evict_cycle", |bench| {
        let idx = SmartIndex::build(&b, &p, SimInstant(0), false).unwrap();
        let budget = ByteSize((idx.footprint() * 4) as u64);
        bench.iter_batched(
            || IndexManager::new(budget, SimDuration::hours(72)),
            |m| {
                for v in 0..16 {
                    let i = SmartIndex::build(&b, &pred(v), SimInstant(0), false).unwrap();
                    m.insert(i, SimInstant(0));
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_smartindex
);
criterion_main!(benches);
