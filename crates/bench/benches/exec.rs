//! Criterion microbenches over the execution engine: predicate paths,
//! aggregation, join, sort, and the end-to-end oracle executor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use feisu_exec::batch::RecordBatch;
use feisu_exec::executor::run_sql;
use feisu_exec::expr::eval_predicate;
use feisu_exec::MemProvider;
use feisu_format::{Column, DataType, Field, Schema};
use feisu_sql::parser::parse_expr;

fn batch(rows: usize) -> RecordBatch {
    let mut rng = feisu_common::rng::DetRng::new(7);
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64, false),
        Field::new("v", DataType::Int64, false),
        Field::new("f", DataType::Float64, false),
        Field::new("s", DataType::Utf8, false),
    ]);
    RecordBatch::new(
        schema,
        vec![
            Column::from_i64((0..rows).map(|_| rng.range_i64(0, 99)).collect()),
            Column::from_i64((0..rows).map(|_| rng.range_i64(-1000, 1000)).collect()),
            Column::from_f64((0..rows).map(|_| rng.next_f64()).collect()),
            Column::from_utf8(
                (0..rows)
                    .map(|_| format!("tag{}", rng.next_below(64)))
                    .collect(),
            ),
        ],
    )
    .unwrap()
}

fn bench_exec(c: &mut Criterion) {
    let b = batch(65_536);

    let mut g = c.benchmark_group("predicate");
    g.throughput(Throughput::Elements(65_536));
    g.bench_function("fast_path_int_cmp", |bench| {
        let e = parse_expr("v > 0").unwrap();
        bench.iter(|| eval_predicate(&b, &e).unwrap());
    });
    g.bench_function("fast_path_conjunction", |bench| {
        let e = parse_expr("v > 0 AND k <= 50 AND f < 0.5").unwrap();
        bench.iter(|| eval_predicate(&b, &e).unwrap());
    });
    g.bench_function("fallback_contains", |bench| {
        let e = parse_expr("s CONTAINS 'tag1'").unwrap();
        bench.iter(|| eval_predicate(&b, &e).unwrap());
    });
    g.bench_function("fallback_arithmetic", |bench| {
        let e = parse_expr("v + k > 40").unwrap();
        bench.iter(|| eval_predicate(&b, &e).unwrap());
    });
    g.finish();

    let mut provider = MemProvider::new();
    provider.insert("t", batch(65_536));
    let mut dim = MemProvider::new();
    dim.insert("t", batch(65_536));
    dim.insert("d", batch(256));

    let mut g = c.benchmark_group("operators");
    g.sample_size(10);
    g.bench_function("hash_aggregate_group_by", |bench| {
        bench.iter(|| {
            run_sql(
                "SELECT k, COUNT(*), SUM(v), AVG(f) FROM t GROUP BY k",
                &mut provider,
            )
            .unwrap()
        });
    });
    g.bench_function("topn_sort_limit", |bench| {
        bench.iter(|| run_sql("SELECT v FROM t ORDER BY v DESC LIMIT 100", &mut provider).unwrap());
    });
    g.bench_function("hash_join_64k_x_256", |bench| {
        bench.iter(|| run_sql("SELECT COUNT(*) FROM t JOIN d ON t.k = d.k", &mut dim).unwrap());
    });
    g.bench_function("full_query_pipeline", |bench| {
        bench.iter(|| {
            run_sql(
                "SELECT k, COUNT(*) AS n FROM t WHERE v > 0 AND f < 0.9 \
                 GROUP BY k HAVING n > 10 ORDER BY n DESC LIMIT 10",
                &mut provider,
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exec
);
criterion_main!(benches);
