//! Criterion microbenches over the columnar format layer: encodings,
//! compression, block round-trips, JSON parsing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use feisu_format::encoding::{delta, dict, rle};
use feisu_format::{compress, Block};
use feisu_workload::datasets::{generate_chunk, DatasetSpec};

fn bench_format(c: &mut Criterion) {
    // A realistic 4096-row, 40-column chunk.
    let mut spec = DatasetSpec::t1(4096);
    spec.fields = 40;
    let schema = spec.schema();
    let cols = generate_chunk(&spec, 0, 4096);
    let block = Block::new(feisu_common::BlockId(0), schema, cols).unwrap();
    let serialized = block.serialize();

    let mut g = c.benchmark_group("block");
    g.throughput(Throughput::Bytes(block.footprint() as u64));
    g.bench_function("serialize_4kx40", |b| b.iter(|| block.serialize()));
    g.bench_function("deserialize_4kx40", |b| {
        b.iter(|| Block::deserialize(&serialized).unwrap())
    });
    g.finish();

    // Integer encodings.
    let sorted: Vec<i64> = (0..65_536).map(|i| i * 3 + 100).collect();
    let repetitive: Vec<i64> = (0..65_536).map(|i| (i / 1000) as i64).collect();
    let mut g = c.benchmark_group("int_encodings");
    g.throughput(Throughput::Bytes(65_536 * 8));
    g.bench_function("delta_encode_sorted", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            delta::encode(&sorted, &mut out);
            out
        })
    });
    g.bench_function("delta_decode_sorted", |b| {
        let mut buf = Vec::new();
        delta::encode(&sorted, &mut buf);
        b.iter(|| {
            let mut pos = 0;
            delta::decode(&buf, &mut pos).unwrap()
        })
    });
    g.bench_function("rle_encode_runs", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            rle::encode(&repetitive, &mut out);
            out
        })
    });
    g.finish();

    // String dictionary.
    let urls: Vec<String> = (0..16_384)
        .map(|i| format!("https://site{}.example/page{}", i % 500, i % 37))
        .collect();
    let refs: Vec<&str> = urls.iter().map(|s| s.as_str()).collect();
    c.bench_function("dict_encode_16k_urls", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            dict::encode(&refs, &mut out);
            out
        })
    });

    // LZ codec on block-like bytes.
    let mut g = c.benchmark_group("lz");
    g.throughput(Throughput::Bytes(serialized.len() as u64));
    g.bench_function("compress_adaptive_block", |b| {
        b.iter(|| compress::compress_adaptive(&serialized))
    });
    let packed = compress::compress(compress::Codec::Lz, &serialized);
    g.bench_function("decompress_block", |b| {
        b.iter(|| compress::decompress(&packed).unwrap())
    });
    g.finish();

    // JSON parsing + flattening.
    let doc = r#"{"user":{"id":12345,"tags":["a","b","c"],"profile":{"age":30,"city":"Beijing"}},"query":"weather","results":[{"url":"https://x.example","rank":1.5},{"url":"https://y.example","rank":2.25}],"ok":true}"#;
    c.bench_function("json_parse_flatten", |b| {
        b.iter(|| {
            let v = feisu_format::json::parse(doc).unwrap();
            feisu_format::json::flatten(&v)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_format
);
criterion_main!(benches);
