//! Criterion ablations on design-choice primitives (DESIGN.md §6):
//! bitmap representation, CNF conversion cost, and the end-to-end
//! simulated-cluster query path (real time of the simulator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use feisu_core::engine::ClusterSpec;
use feisu_index::bitvec::{BitVec, CompressedBits};
use feisu_sql::cnf::to_cnf;
use feisu_sql::parser::parse_expr;

fn bench_ablations(c: &mut Criterion) {
    // Bitmap representation: raw vs RLE at different clustering.
    let clustered = BitVec::from_bools((0..65_536).map(|i| (20_000..30_000).contains(&i)));
    let random = {
        let mut rng = feisu_common::rng::DetRng::new(3);
        BitVec::from_bools((0..65_536).map(|_| rng.chance(0.3)))
    };
    let mut g = c.benchmark_group("bitmap_repr");
    g.bench_function("compress_clustered", |b| {
        b.iter(|| CompressedBits::from_bitvec(&clustered))
    });
    g.bench_function("compress_random", |b| {
        b.iter(|| CompressedBits::from_bitvec(&random))
    });
    let cc = CompressedBits::from_bitvec(&clustered);
    g.bench_function("decode_clustered_rle", |b| b.iter(|| cc.to_bitvec()));
    g.bench_function("bitand_64k", |b| b.iter(|| clustered.and(&random).unwrap()));
    g.finish();

    // CNF conversion on workload-shaped predicates.
    let exprs = [
        parse_expr("a > 1 AND b <= 2").unwrap(),
        parse_expr("NOT (a > 1 OR (b = 2 AND c < 3))").unwrap(),
        parse_expr("(a > 1 AND b > 2) OR (c > 3 AND d > 4)").unwrap(),
    ];
    c.bench_function("cnf_convert_workload_preds", |b| {
        b.iter(|| exprs.iter().map(to_cnf).count())
    });

    // Real-time cost of one simulated-cluster query (the simulator's own
    // overhead, relevant for harness scaling).
    let mut g = c.benchmark_group("cluster_sim");
    g.sample_size(10);
    g.bench_function("end_to_end_count_query", |b| {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 1024;
        // Criterion iterates far past the production daily quota.
        spec.guard.daily_quota = u32::MAX;
        let cluster = feisu_core::engine::FeisuCluster::new(spec).unwrap();
        let u = cluster.register_user("bench");
        cluster.grant_all(u);
        let cred = cluster.login(u).unwrap();
        let schema = feisu_format::Schema::new(vec![feisu_format::Field::new(
            "x",
            feisu_format::DataType::Int64,
            false,
        )]);
        cluster
            .create_table("t", schema, "/hdfs/b/t", &cred)
            .unwrap();
        cluster
            .ingest_rows(
                "t",
                (0..4096)
                    .map(|i| vec![feisu_format::Value::from(i as i64)])
                    .collect(),
                &cred,
            )
            .unwrap();
        b.iter(|| {
            cluster
                .query("SELECT COUNT(*) FROM t WHERE x > 100", &cred)
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablations
);
criterion_main!(benches);
