//! Bloom filter — the `bloom` auxiliary field of the SmartIndex header
//! (Fig. 6). Built over a block's column values so equality predicates
//! whose constant is definitely absent can skip both scan and index
//! construction.

use crate::bitvec::BitVec;
use feisu_common::hash::{bloom_probes, hash_one};
use feisu_format::Value;

/// A fixed-size Bloom filter over column values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: BitVec,
    k: usize,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at roughly `fpp` false
    /// positive rate using the standard m/k formulas.
    pub fn with_capacity(expected_items: usize, fpp: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let fpp = fpp.clamp(1e-6, 0.5);
        let m = (-(n * fpp.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil();
        let m = (m as usize).next_power_of_two().max(64);
        let k = ((m as f64 / n) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as usize;
        BloomFilter {
            bits: BitVec::zeros(m),
            k,
        }
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    pub fn insert(&mut self, value: &Value) {
        let h = hash_one(value);
        let m = self.bits.len();
        for p in bloom_probes(h, self.k, m) {
            self.bits.set(p, true);
        }
    }

    /// `false` means *definitely absent*; `true` means possibly present.
    pub fn may_contain(&self, value: &Value) -> bool {
        let h = hash_one(value);
        let m = self.bits.len();
        bloom_probes(h, self.k, m).all(|p| self.bits.get(p))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        self.bits.footprint() + 8
    }

    /// Fraction of set bits — a saturation diagnostic.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_values_always_found() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000i64 {
            f.insert(&Value::Int64(i));
        }
        for i in 0..1000i64 {
            assert!(f.may_contain(&Value::Int64(i)));
        }
    }

    #[test]
    fn absent_values_mostly_rejected() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for i in 0..1000i64 {
            f.insert(&Value::Int64(i));
        }
        let false_positives = (10_000..20_000i64)
            .filter(|&i| f.may_contain(&Value::Int64(i)))
            .count();
        // 1% target; allow generous slack.
        assert!(
            false_positives < 500,
            "too many false positives: {false_positives}"
        );
    }

    #[test]
    fn works_for_strings() {
        let mut f = BloomFilter::with_capacity(100, 0.01);
        f.insert(&Value::Utf8("baidu.com".into()));
        assert!(f.may_contain(&Value::Utf8("baidu.com".into())));
        assert!(!f.may_contain(&Value::Utf8("definitely-not-inserted-xyz".into())));
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = BloomFilter::with_capacity(100, 0.01);
        let before = f.fill_ratio();
        for i in 0..100i64 {
            f.insert(&Value::Int64(i));
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 0.9);
    }

    #[test]
    fn tiny_capacity_does_not_panic() {
        let mut f = BloomFilter::with_capacity(0, 0.01);
        f.insert(&Value::Int64(1));
        assert!(f.may_contain(&Value::Int64(1)));
        assert!(f.bit_len() >= 64);
    }
}
