//! SmartIndex — Feisu's adaptive predicate-result index (paper §IV-C).
//!
//! Each SmartIndex is a compressed 0-1 vector storing the evaluation
//! result of one *simple predicate* (`column OP literal`) over one data
//! block, held in leaf-server memory. When a later query's conjunctive
//! form contains the same predicate for the same block, the leaf skips
//! both the data scan and the predicate evaluation — the two cost terms
//! the paper credits for SmartIndex's ≥3× speedup (Fig. 9a).
//!
//! Modules:
//! * [`bitvec`] — the 0-1 vector with bitwise algebra and RLE compression;
//! * [`bloom`] / [`zonemap`] — the `bloom` and `range` auxiliary fields of
//!   the index header (Fig. 6);
//! * [`smart`] — the index record itself: header + payload, build &
//!   probe;
//! * [`manager`] — per-leaf cache with memory budget, LRU eviction, the
//!   72-hour TTL, and user preference pinning (§IV-C-2);
//! * [`rewrite`] — the plan-rewrite step (Fig. 7): serving predicates from
//!   indices, including negation reuse (`!(c2 > 5)` via bit-NOT) and
//!   AND/OR combination;
//! * [`btree`] — the B-tree per-column index baseline of Fig. 9b.

//! # Example
//!
//! ```
//! use feisu_common::{BlockId, ByteSize, SimDuration, SimInstant};
//! use feisu_format::{Block, Column, DataType, Field, Schema, Value};
//! use feisu_index::manager::IndexManager;
//! use feisu_index::rewrite::{probe_predicate, ProbeKind};
//! use feisu_sql::ast::BinaryOp;
//! use feisu_sql::cnf::SimplePredicate;
//!
//! let schema = Schema::new(vec![Field::new("c2", DataType::Int64, false)]);
//! let block = Block::new(
//!     BlockId(0),
//!     schema,
//!     vec![Column::from_i64((0..100).collect())],
//! )
//! .unwrap();
//! let pred = SimplePredicate {
//!     column: "c2".into(),
//!     op: BinaryOp::Gt,
//!     value: Value::Int64(50),
//! };
//! let mut cache = IndexManager::new(ByteSize::mib(1), SimDuration::hours(72));
//! // First probe evaluates and caches; the second is a pure memory hit.
//! let (_, kind) = probe_predicate(Some(&mut cache), &block, &pred, SimInstant(0)).unwrap();
//! assert_eq!(kind, ProbeKind::BuiltFresh);
//! let (bits, kind) = probe_predicate(Some(&mut cache), &block, &pred, SimInstant(1)).unwrap();
//! assert_eq!(kind, ProbeKind::Hit);
//! assert_eq!(bits.count_ones(), 49);
//! // The negated predicate is served from the same entry via bit-NOT.
//! let neg = SimplePredicate { column: "c2".into(), op: BinaryOp::LtEq, value: Value::Int64(50) };
//! let (nbits, kind) = probe_predicate(Some(&mut cache), &block, &neg, SimInstant(2)).unwrap();
//! assert_eq!(kind, ProbeKind::NegatedHit);
//! assert_eq!(nbits.count_ones(), 51);
//! ```

pub mod bitvec;
pub mod bloom;
pub mod btree;
pub mod manager;
pub mod rewrite;
pub mod smart;
pub mod zonemap;

pub use bitvec::BitVec;
pub use manager::{IndexManager, IndexStats};
pub use smart::SmartIndex;
