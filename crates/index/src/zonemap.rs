//! Zone maps — the `range` auxiliary field of the SmartIndex header
//! (Fig. 6) and the block-pruning statistic kept in the catalog.
//!
//! A zone map records a column's min/max over one block. Before touching
//! a block (or building an index over it), the leaf asks whether a
//! predicate can possibly match anything inside the range; if not, the
//! whole block produces an all-zeros result for free.

use feisu_format::Value;
use feisu_sql::ast::BinaryOp;
use std::cmp::Ordering;

/// Min/max envelope for one column of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    pub min: Value,
    pub max: Value,
}

impl ZoneMap {
    /// Builds from min/max statistics; `None` when the column is all-null
    /// (no envelope — predicates on it can never be true).
    pub fn new(min: Value, max: Value) -> ZoneMap {
        ZoneMap { min, max }
    }

    /// Whether `column OP value` can be true for *any* row in the block.
    /// `true` = must scan; `false` = skip entirely. Conservative: unknown
    /// comparisons return `true`.
    pub fn may_match(&self, op: BinaryOp, value: &Value) -> bool {
        let lo = match self.min.sql_cmp(value) {
            Some(o) => o,
            None => return true,
        };
        let hi = match self.max.sql_cmp(value) {
            Some(o) => o,
            None => return true,
        };
        match op {
            // Some row == value requires min <= value <= max.
            BinaryOp::Eq => lo != Ordering::Greater && hi != Ordering::Less,
            // Some row != value fails only when min == max == value.
            BinaryOp::NotEq => !(lo == Ordering::Equal && hi == Ordering::Equal),
            // Some row < value requires min < value.
            BinaryOp::Lt => lo == Ordering::Less,
            BinaryOp::LtEq => lo != Ordering::Greater,
            // Some row > value requires max > value.
            BinaryOp::Gt => hi == Ordering::Greater,
            BinaryOp::GtEq => hi != Ordering::Less,
            // CONTAINS and anything else: cannot prune by range.
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zm(lo: i64, hi: i64) -> ZoneMap {
        ZoneMap::new(Value::Int64(lo), Value::Int64(hi))
    }

    #[test]
    fn eq_pruning() {
        let z = zm(10, 20);
        assert!(z.may_match(BinaryOp::Eq, &Value::Int64(10)));
        assert!(z.may_match(BinaryOp::Eq, &Value::Int64(15)));
        assert!(!z.may_match(BinaryOp::Eq, &Value::Int64(9)));
        assert!(!z.may_match(BinaryOp::Eq, &Value::Int64(21)));
    }

    #[test]
    fn range_pruning() {
        let z = zm(10, 20);
        assert!(!z.may_match(BinaryOp::Lt, &Value::Int64(10)));
        assert!(z.may_match(BinaryOp::Lt, &Value::Int64(11)));
        assert!(z.may_match(BinaryOp::LtEq, &Value::Int64(10)));
        assert!(!z.may_match(BinaryOp::LtEq, &Value::Int64(9)));
        assert!(!z.may_match(BinaryOp::Gt, &Value::Int64(20)));
        assert!(z.may_match(BinaryOp::Gt, &Value::Int64(19)));
        assert!(z.may_match(BinaryOp::GtEq, &Value::Int64(20)));
        assert!(!z.may_match(BinaryOp::GtEq, &Value::Int64(21)));
    }

    #[test]
    fn noteq_prunes_only_constant_blocks() {
        let constant = zm(7, 7);
        assert!(!constant.may_match(BinaryOp::NotEq, &Value::Int64(7)));
        assert!(constant.may_match(BinaryOp::NotEq, &Value::Int64(8)));
        let varied = zm(1, 9);
        assert!(varied.may_match(BinaryOp::NotEq, &Value::Int64(5)));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let z = zm(10, 20);
        assert!(z.may_match(BinaryOp::Gt, &Value::Float64(19.5)));
        assert!(!z.may_match(BinaryOp::Gt, &Value::Float64(20.5)));
    }

    #[test]
    fn incomparable_types_never_prune() {
        let z = zm(10, 20);
        assert!(z.may_match(BinaryOp::Eq, &Value::Utf8("x".into())));
        assert!(z.may_match(BinaryOp::Contains, &Value::Utf8("x".into())));
    }

    #[test]
    fn string_zonemap() {
        let z = ZoneMap::new(Value::Utf8("apple".into()), Value::Utf8("mango".into()));
        assert!(z.may_match(BinaryOp::Eq, &Value::Utf8("banana".into())));
        assert!(!z.may_match(BinaryOp::Eq, &Value::Utf8("zebra".into())));
    }
}
