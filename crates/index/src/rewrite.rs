//! Plan rewrite: serving conjunctive predicates from SmartIndex.
//!
//! This implements step 3 of Fig. 3 ("rewrite subplan equivalently based
//! on SmartIndex") and step 5 ("update existing indexes"), plus the Fig. 7
//! transformation: a probe for `c2 <= 5` is also served by an existing
//! index for `c2 > 5` through bit-NOT, and conjuncts/disjuncts combine
//! with bit-AND / bit-OR.
//!
//! For each CNF clause over a block:
//! * a clause whose disjuncts are all simple predicates is answered as the
//!   bit-OR of per-predicate vectors, each served by (in order) a direct
//!   index hit, a negated-index hit, or a fresh evaluation (which is then
//!   inserted into the cache — "Feisu creates a SmartIndex each time a
//!   query predicate is evaluated in a leaf server");
//! * any other clause is returned as *residual* for row-wise evaluation
//!   by the scan operator.

use crate::bitvec::BitVec;
use crate::manager::IndexManager;
use crate::smart::{scan_evaluate, SmartIndex};
use feisu_common::{Result, SimInstant};
use feisu_format::Block;
use feisu_sql::ast::Expr;
use feisu_sql::cnf::{Cnf, Disjunct, SimplePredicate};

/// How one simple predicate was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Direct index hit — no scan, no evaluation.
    Hit,
    /// Served by negating an existing index (Fig. 7 bit-NOT reuse).
    NegatedHit,
    /// Evaluated against the block; a new index was created.
    BuiltFresh,
    /// Evaluated against the block; the index was built but rejected by
    /// the cache (did not fit the memory budget).
    BuiltRejected,
    /// Evaluated against the block without caching (cache disabled).
    Scanned,
}

/// Result of serving a CNF over one block.
#[derive(Debug)]
pub struct CnfOutcome {
    /// Conjunction of all index-servable clauses (rows that may pass).
    pub bits: BitVec,
    /// Clauses that must still be evaluated row-wise.
    pub residual: Vec<Expr>,
    /// Per-predicate accounting, in probe order.
    pub probes: Vec<(SimplePredicate, ProbeKind)>,
}

impl CnfOutcome {
    /// Bytes of data-column reading avoided thanks to index service: the
    /// caller multiplies by column width. Here: count of predicates that
    /// did not touch the block.
    pub fn served_count(&self) -> usize {
        self.probes
            .iter()
            .filter(|(_, k)| matches!(k, ProbeKind::Hit | ProbeKind::NegatedHit))
            .count()
    }

    pub fn evaluated_count(&self) -> usize {
        self.probes.len() - self.served_count()
    }
}

/// Serves one simple predicate for a block. `cache` = None disables the
/// index entirely (the paper's "without SmartIndex" baseline).
pub fn probe_predicate(
    cache: Option<&IndexManager>,
    block: &Block,
    predicate: &SimplePredicate,
    now: SimInstant,
) -> Result<(BitVec, ProbeKind)> {
    let Some(manager) = cache else {
        let col = block.column_by_name(&predicate.column).ok_or_else(|| {
            feisu_common::FeisuError::Index(format!(
                "block {} has no column `{}`",
                block.id(),
                predicate.column
            ))
        })?;
        return Ok((scan_evaluate(col, predicate)?, ProbeKind::Scanned));
    };

    // 1. Direct hit.
    if let Some(idx) = manager.get(block.id(), predicate, now) {
        return Ok((idx.bits(), ProbeKind::Hit));
    }
    // 2. Negated hit: an index for the complementary operator answers us
    //    through bit-NOT (nulls handled inside `negated_bits`).
    if let Some(idx) = manager.get_negated(block.id(), predicate, now) {
        return Ok((idx.negated_bits(), ProbeKind::NegatedHit));
    }
    // 3. Miss: evaluate and cache (rejection is surfaced so leaf stats
    //    can tell "built and rejected" apart from "built and cached").
    let idx = SmartIndex::build(block, predicate, now, false)?;
    let bits = idx.bits();
    let cached = manager.insert(idx, now);
    Ok((
        bits,
        if cached {
            ProbeKind::BuiltFresh
        } else {
            ProbeKind::BuiltRejected
        },
    ))
}

/// Serves a whole CNF over one block.
pub fn evaluate_cnf(
    cache: Option<&IndexManager>,
    block: &Block,
    cnf: &Cnf,
    now: SimInstant,
) -> Result<CnfOutcome> {
    let rows = block.rows();
    let mut bits = BitVec::ones(rows);
    let mut residual = Vec::new();
    let mut probes = Vec::new();
    for clause in &cnf.clauses {
        let all_simple = clause
            .disjuncts
            .iter()
            .all(|d| matches!(d, Disjunct::Simple(_)));
        if !all_simple {
            residual.push(clause.to_expr());
            continue;
        }
        let mut clause_bits = BitVec::zeros(rows);
        for d in &clause.disjuncts {
            let Disjunct::Simple(p) = d else {
                unreachable!()
            };
            let (pbits, kind) = probe_predicate(cache, block, p, now)?;
            clause_bits.or_assign(&pbits)?;
            probes.push((p.clone(), kind));
        }
        bits.and_assign(&clause_bits)?;
    }
    Ok(CnfOutcome {
        bits,
        residual,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_common::{BlockId, ByteSize, SimDuration};
    use feisu_format::{Column, DataType, Field, Schema, Value};
    use feisu_sql::cnf::to_cnf;
    use feisu_sql::eval::eval_truth;
    use feisu_sql::parser::parse_expr;
    use std::collections::HashMap;

    fn test_block() -> Block {
        let schema = Schema::new(vec![
            Field::new("c2", DataType::Int64, true),
            Field::new("c3", DataType::Int64, false),
        ]);
        let c2 = Column::from_values(
            DataType::Int64,
            &(0..200)
                .map(|i| {
                    if i % 17 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i % 13)
                    }
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let c3 = Column::from_i64((0..200).map(|i| i % 7).collect());
        Block::new(BlockId(3), schema, vec![c2, c3]).unwrap()
    }

    fn manager() -> IndexManager {
        IndexManager::new(ByteSize::mib(8), SimDuration::hours(72))
    }

    /// Oracle: evaluate an expression row-wise over the block.
    fn oracle(block: &Block, expr: &Expr) -> BitVec {
        let mut bits = BitVec::zeros(block.rows());
        for i in 0..block.rows() {
            let mut row = HashMap::new();
            for (fi, f) in block.schema().fields().iter().enumerate() {
                row.insert(f.name.clone(), block.column(fi).value(i));
            }
            if eval_truth(expr, &row).unwrap().passes() {
                bits.set(i, true);
            }
        }
        bits
    }

    #[test]
    fn first_probe_builds_second_hits() {
        let block = test_block();
        let m = manager();
        let cnf = to_cnf(&parse_expr("c2 > 5").unwrap());
        let r1 = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(0)).unwrap();
        assert_eq!(r1.probes[0].1, ProbeKind::BuiltFresh);
        let r2 = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(1)).unwrap();
        assert_eq!(r2.probes[0].1, ProbeKind::Hit);
        assert_eq!(r1.bits, r2.bits);
        assert_eq!(r2.served_count(), 1);
    }

    #[test]
    fn negated_index_served_via_bitnot() {
        // Paper Fig. 7: after indexing c2 > 5, the query !(c2 > 5) i.e.
        // c2 <= 5 is served by NOT.
        let block = test_block();
        let m = manager();
        let warm = to_cnf(&parse_expr("c2 > 5").unwrap());
        evaluate_cnf(Some(&m), &block, &warm, SimInstant(0)).unwrap();
        let probe = to_cnf(&parse_expr("c2 <= 5").unwrap());
        let r = evaluate_cnf(Some(&m), &block, &probe, SimInstant(1)).unwrap();
        assert_eq!(r.probes[0].1, ProbeKind::NegatedHit);
        assert_eq!(r.bits, oracle(&block, &parse_expr("c2 <= 5").unwrap()));
    }

    #[test]
    fn q10_q11_q12_equivalence() {
        // The paper's running example: all three forms produce identical
        // result vectors and the later ones are fully index-served.
        let block = test_block();
        let m = manager();
        let q10 = to_cnf(&parse_expr("c2 > 0 AND c2 <= 5").unwrap());
        let r10 = evaluate_cnf(Some(&m), &block, &q10, SimInstant(0)).unwrap();
        let q11 = to_cnf(&parse_expr("c2 > 0 AND !(c2 > 5)").unwrap());
        let r11 = evaluate_cnf(Some(&m), &block, &q11, SimInstant(1)).unwrap();
        assert_eq!(r10.bits, r11.bits);
        // Q11's conjuncts: c2 > 0 direct hit; !(c2 > 5) = c2 <= 5 — the
        // CNF absorbed the NOT, and c2 <= 5 index now exists from Q10.
        assert!(r11
            .probes
            .iter()
            .all(|(_, k)| matches!(k, ProbeKind::Hit | ProbeKind::NegatedHit)));
    }

    #[test]
    fn or_clause_combines_with_bitor() {
        let block = test_block();
        let m = manager();
        let cnf = to_cnf(&parse_expr("c2 > 10 OR c3 = 0").unwrap());
        let r = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(0)).unwrap();
        assert_eq!(r.probes.len(), 2);
        assert_eq!(
            r.bits,
            oracle(&block, &parse_expr("c2 > 10 OR c3 = 0").unwrap())
        );
        assert!(r.residual.is_empty());
    }

    #[test]
    fn multi_clause_conjunction_with_nulls_matches_oracle() {
        let block = test_block();
        let m = manager();
        for src in [
            "c2 > 3 AND c3 < 5",
            "c2 >= 0 AND c2 != 7",
            "(c2 = 1 OR c2 = 2) AND c3 > 1",
            "NOT (c2 > 3) AND c3 <= 6",
        ] {
            let expr = parse_expr(src).unwrap();
            let cnf = to_cnf(&expr);
            let r = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(0)).unwrap();
            assert!(r.residual.is_empty(), "{src} should be fully indexable");
            assert_eq!(r.bits, oracle(&block, &expr), "mismatch for {src}");
        }
    }

    #[test]
    fn residual_clause_passes_through() {
        let block = test_block();
        let m = manager();
        // c2 > c3 is column-column: not indexable.
        let cnf = to_cnf(&parse_expr("c2 > c3 AND c3 < 5").unwrap());
        let r = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(0)).unwrap();
        assert_eq!(r.residual.len(), 1);
        assert_eq!(r.probes.len(), 1);
        // bits covers only the indexable clause.
        assert_eq!(r.bits, oracle(&block, &parse_expr("c3 < 5").unwrap()));
    }

    #[test]
    fn disabled_cache_scans_everything() {
        let block = test_block();
        let cnf = to_cnf(&parse_expr("c2 > 5 AND c3 = 2").unwrap());
        let r1 = evaluate_cnf(None, &block, &cnf, SimInstant(0)).unwrap();
        let r2 = evaluate_cnf(None, &block, &cnf, SimInstant(1)).unwrap();
        assert!(r1.probes.iter().all(|(_, k)| *k == ProbeKind::Scanned));
        assert!(r2.probes.iter().all(|(_, k)| *k == ProbeKind::Scanned));
        assert_eq!(r1.bits, r2.bits);
    }

    #[test]
    fn count_star_served_from_index_only() {
        // An aggregation like the paper's Q1 needs only the bit count.
        let block = test_block();
        let m = manager();
        let expr = parse_expr("c2 > 0 AND c2 <= 5").unwrap();
        let cnf = to_cnf(&expr);
        evaluate_cnf(Some(&m), &block, &cnf, SimInstant(0)).unwrap();
        let r = evaluate_cnf(Some(&m), &block, &cnf, SimInstant(1)).unwrap();
        assert_eq!(r.bits.count_ones(), oracle(&block, &expr).count_ones());
        assert_eq!(r.evaluated_count(), 0, "all in-memory");
    }
}
