//! Per-leaf SmartIndex cache management (paper §IV-C-2).
//!
//! "Feisu manages the indices based on the size of the cache memory in
//! the leaf servers and the time the index has been in the cache since
//! creation. An index will be deleted from the cache if: (1) the cache
//! memory is full (by a LRU based approach); or (2) the index has been in
//! the cache for too long [TTL, 72 hours]." Users may also set
//! *preferences*: preferred indices survive TTL expiry while memory is
//! not under pressure.
//!
//! LRU is implemented with a lazy queue: each touch appends a
//! `(key, stamp)` pair; eviction pops until it finds a pair whose stamp
//! still matches the entry (amortized O(1)).
//!
//! The manager is internally locked (one mutex per leaf server, i.e. a
//! per-node shard of the cluster's index memory), so leaf servers can be
//! shared across the engine's execution-pool workers by `&self`. All
//! operations are single-lock critical sections; metric counters are
//! updated after the state lock is released.

use crate::smart::SmartIndex;
use feisu_common::hash::FxHashMap;
use feisu_common::{BlockId, ByteSize, SimDuration, SimInstant};
use feisu_obs::{Counter, MetricsRegistry};
use feisu_sql::cnf::SimplePredicate;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key: one predicate over one block.
pub type IndexKey = (BlockId, String);

#[derive(Debug)]
struct Entry {
    index: SmartIndex,
    stamp: u64,
    pinned: bool,
    footprint: ByteSize,
}

/// Counters exposed to the evaluation harness (Fig. 11a plots the miss
/// ratio these feed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    /// Freshly built indices dropped because they did not fit in the
    /// budget (distinguishes "built and rejected" from "never built" in
    /// Fig. 11-style memory sweeps).
    pub rejected: u64,
    pub lru_evictions: u64,
    pub ttl_evictions: u64,
}

impl IndexStats {
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Registry handles mirroring [`IndexStats`]; counters are shared across
/// every leaf attached to the same registry, so they read as cluster-wide
/// totals.
#[derive(Debug)]
struct IndexMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
    rejected: Arc<Counter>,
    lru_evictions: Arc<Counter>,
    ttl_evictions: Arc<Counter>,
}

/// Counter increments accumulated inside a state critical section and
/// flushed to the registry after the lock is dropped.
#[derive(Debug, Default, Clone, Copy)]
struct MetricDelta {
    hits: u64,
    misses: u64,
    inserts: u64,
    rejected: u64,
    lru_evictions: u64,
    ttl_evictions: u64,
}

/// The mutable cache state, guarded by the manager's mutex.
#[derive(Debug, Default)]
struct ManagerState {
    used: ByteSize,
    entries: FxHashMap<IndexKey, Entry>,
    lru: VecDeque<(IndexKey, u64)>,
    next_stamp: u64,
    stats: IndexStats,
}

/// The per-leaf index cache.
#[derive(Debug)]
pub struct IndexManager {
    budget: ByteSize,
    ttl: SimDuration,
    state: Mutex<ManagerState>,
    // Behind its own mutex because metrics are attached after the manager
    // may already be shared.
    metrics: Mutex<Option<IndexMetrics>>,
}

impl IndexManager {
    /// `budget` is the leaf's SmartIndex memory (512 MB in the paper's
    /// default setup); `ttl` the retirement age (72 h).
    pub fn new(budget: ByteSize, ttl: SimDuration) -> Self {
        IndexManager {
            budget,
            ttl,
            state: Mutex::new(ManagerState::default()),
            metrics: Mutex::new(None),
        }
    }

    /// Starts publishing `feisu.index.*` counters alongside the local
    /// [`IndexStats`]. Counters accumulate across every manager attached
    /// to the same registry (one per leaf server).
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.metrics.lock() = Some(IndexMetrics {
            hits: registry.counter("feisu.index.hits"),
            misses: registry.counter("feisu.index.misses"),
            inserts: registry.counter("feisu.index.inserts"),
            rejected: registry.counter("feisu.index.rejected"),
            lru_evictions: registry.counter("feisu.index.lru_evictions"),
            ttl_evictions: registry.counter("feisu.index.ttl_evictions"),
        });
    }

    fn flush(&self, d: MetricDelta) {
        if let Some(m) = self.metrics.lock().as_ref() {
            m.hits.add(d.hits);
            m.misses.add(d.misses);
            m.inserts.add(d.inserts);
            m.rejected.add(d.rejected);
            m.lru_evictions.add(d.lru_evictions);
            m.ttl_evictions.add(d.ttl_evictions);
        }
    }

    /// Looks up an index, counting a hit/miss and refreshing LRU order.
    /// TTL-expired unpinned entries are treated as misses and dropped.
    /// Returns a clone of the (compressed) index record.
    pub fn get(
        &self,
        block: BlockId,
        predicate: &SimplePredicate,
        now: SimInstant,
    ) -> Option<SmartIndex> {
        self.get_by_key((block, predicate.key()), now)
    }

    /// Looks up the index for the *complementary* predicate (`c > 5` is
    /// served by an index for `c <= 5` through bit-NOT). Same hit/miss and
    /// LRU accounting as [`IndexManager::get`]; `None` without any stats
    /// movement when the operator has no complement. The key is built from
    /// borrowed parts — no scratch `SimplePredicate` is allocated.
    pub fn get_negated(
        &self,
        block: BlockId,
        predicate: &SimplePredicate,
        now: SimInstant,
    ) -> Option<SmartIndex> {
        self.get_by_key((block, predicate.negated_key()?), now)
    }

    fn get_by_key(&self, key: IndexKey, now: SimInstant) -> Option<SmartIndex> {
        let mut d = MetricDelta::default();
        let mut state = self.state.lock();
        let expired = match state.entries.get(&key) {
            None => {
                state.stats.misses += 1;
                d.misses += 1;
                drop(state);
                self.flush(d);
                return None;
            }
            Some(e) => !e.pinned && now.since(e.index.created_at) > self.ttl,
        };
        if expired {
            state.remove(&key);
            state.stats.ttl_evictions += 1;
            state.stats.misses += 1;
            d.ttl_evictions += 1;
            d.misses += 1;
            drop(state);
            self.flush(d);
            return None;
        }
        state.stats.hits += 1;
        d.hits += 1;
        let stamp = state.bump_stamp();
        let e = state.entries.get_mut(&key).expect("checked above");
        e.stamp = stamp;
        let index = e.index.clone();
        state.lru.push_back((key, stamp));
        drop(state);
        self.flush(d);
        Some(index)
    }

    /// Peeks without touching statistics or LRU order (used by tests and
    /// monitoring).
    pub fn peek(&self, block: BlockId, predicate: &SimplePredicate) -> Option<SmartIndex> {
        self.state
            .lock()
            .entries
            .get(&(block, predicate.key()))
            .map(|e| e.index.clone())
    }

    /// Like [`IndexManager::peek`] for the complementary predicate, keyed
    /// without cloning the predicate's column or value.
    pub fn peek_negated(&self, block: BlockId, predicate: &SimplePredicate) -> Option<SmartIndex> {
        let key = (block, predicate.negated_key()?);
        self.state.lock().entries.get(&key).map(|e| e.index.clone())
    }

    /// True when a [`IndexManager::get`] or [`IndexManager::get_negated`]
    /// at `now` would hit: a live (pinned or unexpired) entry exists for
    /// the predicate or its complement. No statistics or LRU movement, no
    /// clones — this is the planning probe behind selective decode and the
    /// count-only cache path.
    pub fn servable(&self, block: BlockId, predicate: &SimplePredicate, now: SimInstant) -> bool {
        let state = self.state.lock();
        let live = |key: &IndexKey| {
            state
                .entries
                .get(key)
                .is_some_and(|e| e.pinned || now.since(e.index.created_at) <= self.ttl)
        };
        if live(&(block, predicate.key())) {
            return true;
        }
        predicate.negated_key().is_some_and(|nk| live(&(block, nk)))
    }

    /// Inserts a freshly built index, evicting LRU entries as needed. An
    /// index larger than the whole budget is simply not cached; the
    /// rejection is counted. Returns true when the index was cached.
    pub fn insert(&self, index: SmartIndex, now: SimInstant) -> bool {
        self.insert_inner(index, now, false)
    }

    /// Inserts with a user preference: the entry survives TTL expiry while
    /// memory is not full (§IV-C-2 "indices with preferences can remain").
    pub fn insert_pinned(&self, index: SmartIndex, now: SimInstant) -> bool {
        self.insert_inner(index, now, true)
    }

    fn insert_inner(&self, index: SmartIndex, now: SimInstant, pinned: bool) -> bool {
        let footprint = ByteSize(index.footprint() as u64);
        let mut d = MetricDelta::default();
        let mut state = self.state.lock();
        if footprint > self.budget {
            state.stats.rejected += 1;
            d.rejected += 1;
            drop(state);
            self.flush(d);
            return false;
        }
        let key = (index.block_id, index.key());
        state.remove(&key);
        // Evict expired entries first, then LRU until the new one fits.
        state.evict_expired(self.ttl, now, &mut d);
        while state.used + footprint > self.budget {
            if !state.evict_lru_one(&mut d) {
                // Everything left is pinned; drop pins' protection under
                // memory pressure (paper: preferences only hold while the
                // cache is not full).
                if !state.force_evict_one(&mut d) {
                    // Cache empty yet doesn't fit: give up, count it.
                    state.stats.rejected += 1;
                    d.rejected += 1;
                    drop(state);
                    self.flush(d);
                    return false;
                }
            }
        }
        let stamp = state.bump_stamp();
        state.lru.push_back((key.clone(), stamp));
        state.used += footprint;
        state.entries.insert(
            key,
            Entry {
                index,
                stamp,
                pinned,
                footprint,
            },
        );
        state.stats.inserts += 1;
        d.inserts += 1;
        drop(state);
        self.flush(d);
        true
    }

    /// Drops all TTL-expired, unpinned entries.
    pub fn evict_expired(&self, now: SimInstant) {
        let mut d = MetricDelta::default();
        let mut state = self.state.lock();
        state.evict_expired(self.ttl, now, &mut d);
        drop(state);
        self.flush(d);
    }

    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.lock().entries.is_empty()
    }

    pub fn memory_used(&self) -> ByteSize {
        self.state.lock().used
    }

    pub fn budget(&self) -> ByteSize {
        self.budget
    }

    pub fn stats(&self) -> IndexStats {
        self.state.lock().stats
    }

    pub fn reset_stats(&self) {
        self.state.lock().stats = IndexStats::default();
    }
}

impl ManagerState {
    fn evict_expired(&mut self, ttl: SimDuration, now: SimInstant, d: &mut MetricDelta) {
        let expired: Vec<IndexKey> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned && now.since(e.index.created_at) > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        for key in expired {
            self.remove(&key);
            self.stats.ttl_evictions += 1;
            d.ttl_evictions += 1;
        }
    }

    /// Evicts the least-recently-used unpinned entry. Returns false when
    /// nothing evictable remains.
    fn evict_lru_one(&mut self, d: &mut MetricDelta) -> bool {
        // Each call scans every queue record at most once; pinned live
        // records are re-queued, stale records dropped.
        let max_scan = self.lru.len();
        for _ in 0..max_scan {
            let (key, stamp) = match self.lru.pop_front() {
                Some(x) => x,
                None => return false,
            };
            match self.entries.get(&key) {
                Some(e) if e.stamp == stamp => {
                    if e.pinned {
                        self.lru.push_back((key, stamp));
                    } else {
                        self.remove(&key);
                        self.stats.lru_evictions += 1;
                        d.lru_evictions += 1;
                        return true;
                    }
                }
                _ => {} // stale record: drop
            }
        }
        false
    }

    /// Evicts any one entry, pinned or not (memory pressure trumps pins).
    fn force_evict_one(&mut self, d: &mut MetricDelta) -> bool {
        if let Some(key) = self.entries.keys().next().cloned() {
            self.remove(&key);
            self.stats.lru_evictions += 1;
            d.lru_evictions += 1;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, key: &IndexKey) {
        if let Some(e) = self.entries.remove(key) {
            self.used = self.used.saturating_sub(e.footprint);
        }
    }

    fn bump_stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{Block, Column, DataType, Field, Schema, Value};
    use feisu_sql::ast::BinaryOp;

    fn block(id: u64, rows: usize) -> Block {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let col = Column::from_i64((0..rows as i64).collect());
        Block::new(BlockId(id), schema, vec![col]).unwrap()
    }

    fn pred(v: i64) -> SimplePredicate {
        SimplePredicate {
            column: "x".into(),
            op: BinaryOp::Gt,
            value: Value::Int64(v),
        }
    }

    fn idx(block_id: u64, v: i64, created: SimInstant) -> SmartIndex {
        SmartIndex::build(&block(block_id, 1000), &pred(v), created, false).unwrap()
    }

    fn manager(kb: u64) -> IndexManager {
        IndexManager::new(ByteSize::kib(kb), SimDuration::hours(72))
    }

    #[test]
    fn hit_after_insert() {
        let m = manager(64);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        assert!(m.get(BlockId(1), &pred(5), SimInstant(1)).is_some());
        assert!(m.get(BlockId(1), &pred(6), SimInstant(1)).is_none());
        assert!(m.get(BlockId(2), &pred(5), SimInstant(1)).is_none());
        let s = m.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn ttl_expiry_is_a_miss() {
        let m = manager(64);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        let later = SimInstant::EPOCH + SimDuration::hours(73);
        assert!(m.get(BlockId(1), &pred(5), later).is_none());
        assert_eq!(m.stats().ttl_evictions, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn within_ttl_still_hit() {
        let m = manager(64);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        let later = SimInstant::EPOCH + SimDuration::hours(71);
        assert!(m.get(BlockId(1), &pred(5), later).is_some());
    }

    #[test]
    fn pinned_survives_ttl() {
        let m = manager(64);
        m.insert_pinned(idx(1, 5, SimInstant(0)), SimInstant(0));
        let later = SimInstant::EPOCH + SimDuration::hours(1000);
        assert!(m.get(BlockId(1), &pred(5), later).is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Each 1000-row index ≈ 125 B bits + overhead; a tight budget of
        // ~3 entries forces eviction on the 4th insert.
        let one = idx(1, 1, SimInstant(0));
        let budget = ByteSize((one.footprint() * 3) as u64 + 10);
        let m = IndexManager::new(budget, SimDuration::hours(72));
        m.insert(idx(1, 1, SimInstant(0)), SimInstant(0));
        m.insert(idx(2, 2, SimInstant(0)), SimInstant(0));
        m.insert(idx(3, 3, SimInstant(0)), SimInstant(0));
        // Touch 1 so 2 becomes LRU.
        assert!(m.get(BlockId(1), &pred(1), SimInstant(1)).is_some());
        m.insert(idx(4, 4, SimInstant(0)), SimInstant(0));
        assert!(m.peek(BlockId(2), &pred(2)).is_none(), "2 was LRU");
        assert!(m.peek(BlockId(1), &pred(1)).is_some());
        assert!(m.peek(BlockId(4), &pred(4)).is_some());
        assert!(m.stats().lru_evictions >= 1);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let m = manager(64);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        let used_before = m.memory_used();
        m.insert(idx(1, 5, SimInstant(10)), SimInstant(10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.memory_used(), used_before);
    }

    #[test]
    fn oversized_index_not_cached_and_counted_rejected() {
        let m = IndexManager::new(ByteSize::bytes(16), SimDuration::hours(72));
        assert!(!m.insert(idx(1, 5, SimInstant(0)), SimInstant(0)));
        assert!(m.is_empty());
        assert_eq!(m.stats().rejected, 1);
        assert_eq!(m.stats().inserts, 0);
    }

    #[test]
    fn rejected_mirrors_to_registry() {
        let registry = MetricsRegistry::new();
        let m = IndexManager::new(ByteSize::bytes(16), SimDuration::hours(72));
        m.attach_metrics(&registry);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        assert_eq!(registry.counter("feisu.index.rejected").get(), 1);
    }

    #[test]
    fn memory_accounting_balances() {
        let m = manager(1024);
        for b in 0..10 {
            m.insert(idx(b, b as i64, SimInstant(0)), SimInstant(0));
        }
        let total: u64 = (0..10)
            .filter_map(|b| m.peek(BlockId(b), &pred(b as i64)))
            .map(|i| i.footprint() as u64)
            .sum();
        assert_eq!(m.memory_used().as_u64(), total);
    }

    #[test]
    fn force_eviction_under_all_pinned_pressure() {
        let one = idx(1, 1, SimInstant(0));
        let budget = ByteSize((one.footprint() * 2) as u64 + 10);
        let m = IndexManager::new(budget, SimDuration::hours(72));
        m.insert_pinned(idx(1, 1, SimInstant(0)), SimInstant(0));
        m.insert_pinned(idx(2, 2, SimInstant(0)), SimInstant(0));
        // Third pinned insert must force out a pinned entry, not spin.
        m.insert_pinned(idx(3, 3, SimInstant(0)), SimInstant(0));
        assert!(m.len() <= 2);
        assert!(m.peek(BlockId(3), &pred(3)).is_some());
    }

    #[test]
    fn attached_registry_mirrors_stats() {
        let registry = MetricsRegistry::new();
        let m = manager(64);
        m.attach_metrics(&registry);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        m.get(BlockId(1), &pred(5), SimInstant(0));
        m.get(BlockId(1), &pred(9), SimInstant(0));
        assert_eq!(registry.counter("feisu.index.inserts").get(), 1);
        assert_eq!(registry.counter("feisu.index.hits").get(), 1);
        assert_eq!(registry.counter("feisu.index.misses").get(), 1);
    }

    #[test]
    fn miss_ratio_computation() {
        let m = manager(64);
        m.insert(idx(1, 5, SimInstant(0)), SimInstant(0));
        m.get(BlockId(1), &pred(5), SimInstant(0));
        m.get(BlockId(1), &pred(9), SimInstant(0));
        m.get(BlockId(1), &pred(9), SimInstant(0));
        let s = m.stats();
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn shared_across_threads() {
        // The manager is one per-node shard: concurrent probes/inserts
        // must be safe behind `&self`.
        let m = std::sync::Arc::new(manager(1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = m.clone();
                s.spawn(move || {
                    for b in 0..16u64 {
                        let id = t * 100 + b;
                        m.insert(idx(id, id as i64, SimInstant(0)), SimInstant(0));
                        assert!(m
                            .get(BlockId(id), &pred(id as i64), SimInstant(1))
                            .is_some());
                    }
                });
            }
        });
        assert_eq!(m.stats().inserts, 64);
        assert_eq!(m.stats().hits, 64);
    }
}
