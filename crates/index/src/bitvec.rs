//! The 0-1 vector underlying SmartIndex.
//!
//! Supports the bitwise algebra the plan rewriter needs (`AND`, `OR`,
//! `NOT` — Fig. 7 computes `!(c2 > 5)` with bit-NOT and combines
//! conjuncts with bit-AND) plus run-length compression for memory
//! efficiency ("Feisu can compress the index to improve memory
//! efficiency", §IV-C-1).

use feisu_common::{FeisuError, Result};

/// A fixed-length bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zeros vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds from a bool iterator.
    pub fn from_bools(bools: impl IntoIterator<Item = bool>) -> Self {
        let mut v = BitVec::zeros(0);
        for b in bools {
            v.push(b);
        }
        v
    }

    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        if bit {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    fn mask_tail(&mut self) {
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    fn check_len(&self, other: &BitVec) -> Result<()> {
        if self.len != other.len {
            return Err(FeisuError::Index(format!(
                "bitvec length mismatch: {} vs {}",
                self.len, other.len
            )));
        }
        Ok(())
    }

    /// `self & other`.
    pub fn and(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        })
    }

    /// `self | other`.
    pub fn or(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        })
    }

    /// `self & !other` — used to subtract null positions after a NOT.
    pub fn and_not(&self, other: &BitVec) -> Result<BitVec> {
        self.check_len(other)?;
        Ok(BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            len: self.len,
        })
    }

    /// `!self` (tail bits stay zero).
    #[allow(clippy::should_implement_trait)]
    pub fn not(&self) -> BitVec {
        let mut v = BitVec {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        v.mask_tail();
        v
    }

    /// `self &= other`, in place — no allocation per combine, unlike
    /// [`BitVec::and`].
    pub fn and_assign(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        Ok(())
    }

    /// `self |= other`, in place.
    pub fn or_assign(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        Ok(())
    }

    /// `self &= !other`, in place.
    pub fn and_not_assign(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        Ok(())
    }

    /// `self = !self`, in place (tail bits stay zero).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Overwrites the 64-bit word at word index `wi`, keeping the tail
    /// invariant. Lets typed kernels emit 64 selection bits per store.
    #[inline]
    pub fn store_word(&mut self, wi: usize, word: u64) {
        self.words[wi] = word;
        if wi + 1 == self.words.len() && !self.len.is_multiple_of(64) {
            self.words[wi] &= (1u64 << (self.len % 64)) - 1;
        }
    }

    /// In-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<BitVec>()
    }

    /// Raw words (for serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub fn from_words(words: Vec<u64>, len: usize) -> Result<BitVec> {
        if words.len() != len.div_ceil(64) {
            return Err(FeisuError::Index("word count does not match length".into()));
        }
        let mut v = BitVec { words, len };
        v.mask_tail();
        Ok(v)
    }
}

/// A BitVec stored in its most compact of two forms: raw words or RLE
/// runs. Dense random bitmaps stay raw; the selective/clustered results
/// typical of log predicates compress heavily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressedBits {
    Raw(BitVec),
    /// Run-length encoded: alternating run lengths starting with a
    /// zero-run (possibly of length 0).
    Rle {
        runs: Vec<u32>,
        len: usize,
    },
}

impl CompressedBits {
    /// Compresses, keeping whichever representation is smaller.
    pub fn from_bitvec(bits: &BitVec) -> CompressedBits {
        let mut runs: Vec<u32> = Vec::new();
        let mut current = false;
        let mut run_len: u32 = 0;
        for i in 0..bits.len() {
            let b = bits.get(i);
            if b == current {
                run_len += 1;
            } else {
                runs.push(run_len);
                current = b;
                run_len = 1;
            }
        }
        runs.push(run_len);
        let rle_bytes = runs.len() * 4;
        let raw_bytes = bits.words().len() * 8;
        if rle_bytes < raw_bytes {
            CompressedBits::Rle {
                runs,
                len: bits.len(),
            }
        } else {
            CompressedBits::Raw(bits.clone())
        }
    }

    /// Decompresses back to a plain bit vector.
    pub fn to_bitvec(&self) -> BitVec {
        match self {
            CompressedBits::Raw(b) => b.clone(),
            CompressedBits::Rle { runs, len } => {
                let mut v = BitVec::zeros(*len);
                let mut pos = 0usize;
                let mut bit = false;
                for &run in runs {
                    if bit {
                        for i in pos..pos + run as usize {
                            v.set(i, true);
                        }
                    }
                    pos += run as usize;
                    bit = !bit;
                }
                v
            }
        }
    }

    pub fn len(&self) -> usize {
        match self {
            CompressedBits::Raw(b) => b.len(),
            CompressedBits::Rle { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate footprint in bytes.
    pub fn footprint(&self) -> usize {
        match self {
            CompressedBits::Raw(b) => b.footprint(),
            CompressedBits::Rle { runs, .. } => runs.len() * 4 + 24,
        }
    }

    /// Count of set bits without materializing (RLE counts odd runs).
    pub fn count_ones(&self) -> usize {
        match self {
            CompressedBits::Raw(b) => b.count_ones(),
            CompressedBits::Rle { runs, .. } => {
                runs.iter().skip(1).step_by(2).map(|&r| r as usize).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut v = BitVec::zeros(0);
        v.push(true);
        v.push(false);
        v.push(true);
        assert_eq!(v.len(), 3);
        assert!(v.get(0));
        assert!(!v.get(1));
        v.set(1, true);
        assert!(v.get(1));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn ones_masks_tail() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.not().count_ones(), 0);
    }

    #[test]
    fn algebra_laws() {
        let a = BitVec::from_bools([true, true, false, false, true]);
        let b = BitVec::from_bools([true, false, true, false, false]);
        assert_eq!(
            a.and(&b).unwrap(),
            BitVec::from_bools([true, false, false, false, false].into_iter())
        );
        assert_eq!(
            a.or(&b).unwrap(),
            BitVec::from_bools([true, true, true, false, true].into_iter())
        );
        assert_eq!(
            a.not(),
            BitVec::from_bools([false, false, true, true, false].into_iter())
        );
        assert_eq!(
            a.and_not(&b).unwrap(),
            BitVec::from_bools([false, true, false, false, true].into_iter())
        );
        // De Morgan on bitvecs.
        assert_eq!(a.and(&b).unwrap().not(), a.not().or(&b.not()).unwrap());
    }

    #[test]
    fn length_mismatch_errors() {
        let a = BitVec::zeros(5);
        let b = BitVec::zeros(6);
        assert!(a.and(&b).is_err());
        assert!(a.or(&b).is_err());
        let mut c = BitVec::zeros(5);
        assert!(c.and_assign(&b).is_err());
        assert!(c.or_assign(&b).is_err());
        assert!(c.and_not_assign(&b).is_err());
    }

    #[test]
    fn assign_ops_match_allocating_ops() {
        let a = BitVec::from_bools((0..200).map(|i| i % 3 == 0));
        let b = BitVec::from_bools((0..200).map(|i| i % 5 == 0));
        let mut x = a.clone();
        x.and_assign(&b).unwrap();
        assert_eq!(x, a.and(&b).unwrap());
        let mut x = a.clone();
        x.or_assign(&b).unwrap();
        assert_eq!(x, a.or(&b).unwrap());
        let mut x = a.clone();
        x.and_not_assign(&b).unwrap();
        assert_eq!(x, a.and_not(&b).unwrap());
        let mut x = a.clone();
        x.not_assign();
        assert_eq!(x, a.not());
    }

    #[test]
    fn store_word_masks_tail() {
        let mut v = BitVec::zeros(70);
        v.store_word(0, u64::MAX);
        assert_eq!(v.count_ones(), 64);
        v.store_word(1, u64::MAX);
        // Only 6 bits of the last word are inside the vector.
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v, BitVec::ones(70));
        assert_eq!(v.not().count_ones(), 0);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::zeros(200);
        for i in [0usize, 63, 64, 65, 130, 199] {
            v.set(i, true);
        }
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 65, 130, 199]);
    }

    #[test]
    fn double_not_is_identity() {
        let v = BitVec::from_bools((0..100).map(|i| i % 7 == 0));
        assert_eq!(v.not().not(), v);
    }

    #[test]
    fn words_roundtrip() {
        let v = BitVec::from_bools((0..77).map(|i| i % 3 == 0));
        let back = BitVec::from_words(v.words().to_vec(), v.len()).unwrap();
        assert_eq!(back, v);
        assert!(BitVec::from_words(vec![0; 1], 100).is_err());
    }

    #[test]
    fn rle_roundtrip_clustered() {
        // Long runs → RLE chosen and lossless.
        let v = BitVec::from_bools((0..10_000).map(|i| (2000..4000).contains(&i)));
        let c = CompressedBits::from_bitvec(&v);
        assert!(matches!(c, CompressedBits::Rle { .. }));
        assert!(c.footprint() < v.footprint() / 10);
        assert_eq!(c.to_bitvec(), v);
        assert_eq!(c.count_ones(), v.count_ones());
    }

    #[test]
    fn rle_roundtrip_alternating_falls_back_to_raw() {
        let v = BitVec::from_bools((0..1000).map(|i| i % 2 == 0));
        let c = CompressedBits::from_bitvec(&v);
        assert!(matches!(c, CompressedBits::Raw(_)));
        assert_eq!(c.to_bitvec(), v);
    }

    #[test]
    fn rle_all_zeros_and_all_ones() {
        for v in [BitVec::zeros(500), BitVec::ones(500)] {
            let c = CompressedBits::from_bitvec(&v);
            assert_eq!(c.to_bitvec(), v);
            assert_eq!(c.count_ones(), v.count_ones());
        }
    }

    #[test]
    fn empty_bitvec() {
        let v = BitVec::zeros(0);
        let c = CompressedBits::from_bitvec(&v);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.to_bitvec(), v);
    }
}
