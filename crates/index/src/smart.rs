//! The SmartIndex record (paper Fig. 6).
//!
//! Header: magic, block id, the predicate key (`op/colname/colvalue`),
//! compress type, plus the auxiliary `range` (zone map) and `bloom`
//! fields. Payload: the compressed 0-1 vector of the predicate's
//! evaluation result, and — required for correct negation reuse under
//! SQL's three-valued logic — the block column's null positions. A NOT
//! served from an index must exclude null rows: `!(c > 5)` is *unknown*
//! for a null `c`, and unknown rows do not pass filters, so
//! `bits(NOT p) = !(bits(p) | nulls)`.

use crate::bitvec::{BitVec, CompressedBits};
use crate::bloom::BloomFilter;
use crate::zonemap::ZoneMap;
use feisu_common::{BlockId, FeisuError, Result, SimInstant};
use feisu_format::{Block, Column};
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::SimplePredicate;
use feisu_sql::eval::{compare, Truth};

/// Magic value opening a serialized SmartIndex (Fig. 6 `magic`).
pub const SMARTINDEX_MAGIC: u32 = 0xFE15_0D01;

/// One SmartIndex: the cached evaluation of one simple predicate over one
/// block.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartIndex {
    /// Which block the result covers.
    pub block_id: BlockId,
    /// The predicate this index answers.
    pub predicate: SimplePredicate,
    /// Rows in the block (= bit length).
    pub rows: usize,
    /// Compressed evaluation result: bit i set ⇔ row i satisfies the
    /// predicate (nulls are never set).
    bits: CompressedBits,
    /// Null positions of the predicate column, present only when the
    /// column actually contains nulls.
    nulls: Option<CompressedBits>,
    /// Min/max of the indexed column over this block.
    pub range: Option<ZoneMap>,
    /// Bloom filter over the column values (built only for small blocks /
    /// equality-friendly columns; optional per Fig. 6).
    pub bloom: Option<BloomFilter>,
    /// When the index was created (TTL bookkeeping).
    pub created_at: SimInstant,
}

impl SmartIndex {
    /// Builds an index by actually evaluating `predicate` against the
    /// block. This is the slow path whose result later queries reuse.
    pub fn build(
        block: &Block,
        predicate: &SimplePredicate,
        now: SimInstant,
        with_bloom: bool,
    ) -> Result<SmartIndex> {
        let column = block.column_by_name(&predicate.column).ok_or_else(|| {
            FeisuError::Index(format!(
                "block {} has no column `{}`",
                block.id(),
                predicate.column
            ))
        })?;
        let rows = block.rows();
        let mut bits = BitVec::zeros(rows);
        let mut nulls = BitVec::zeros(rows);
        let mut has_nulls = false;
        for i in 0..rows {
            let v = column.value(i);
            if v.is_null() {
                nulls.set(i, true);
                has_nulls = true;
                continue;
            }
            match compare(predicate.op, &v, &predicate.value)? {
                Truth::True => bits.set(i, true),
                Truth::False => {}
                // Non-null vs non-null comparison can't be unknown, but a
                // type-mismatched comparison errors above.
                Truth::Unknown => {}
            }
        }
        let range = column.min_max().map(|(min, max)| ZoneMap::new(min, max));
        let bloom = if with_bloom {
            let mut f = BloomFilter::with_capacity(rows, 0.01);
            for i in 0..rows {
                let v = column.value(i);
                if !v.is_null() {
                    f.insert(&v);
                }
            }
            Some(f)
        } else {
            None
        };
        Ok(SmartIndex {
            block_id: block.id(),
            predicate: predicate.clone(),
            rows,
            bits: CompressedBits::from_bitvec(&bits),
            nulls: has_nulls.then(|| CompressedBits::from_bitvec(&nulls)),
            range,
            bloom,
            created_at: now,
        })
    }

    /// The positive evaluation result.
    pub fn bits(&self) -> BitVec {
        self.bits.to_bitvec()
    }

    /// The result for the *negated* predicate under 3VL: set rows are
    /// those where `NOT predicate` is true (nulls excluded). This is the
    /// Fig. 7 bit-NOT reuse.
    pub fn negated_bits(&self) -> BitVec {
        let positive = self.bits.to_bitvec();
        match &self.nulls {
            None => positive.not(),
            Some(n) => positive
                .not()
                .and_not(&n.to_bitvec())
                .expect("null mask has index length"),
        }
    }

    /// Rows matching the predicate.
    pub fn selectivity(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bits.count_ones() as f64 / self.rows as f64
        }
    }

    /// Count of matching rows (serves `COUNT(*)` without materializing).
    pub fn count(&self) -> usize {
        self.bits.count_ones()
    }

    /// In-memory footprint used by the manager's budget accounting.
    pub fn footprint(&self) -> usize {
        let mut f = self.bits.footprint() + 96 + self.predicate.key().len();
        if let Some(n) = &self.nulls {
            f += n.footprint();
        }
        if let Some(b) = &self.bloom {
            f += b.footprint();
        }
        f
    }

    /// The cache key this index answers (op/colname/colvalue of Fig. 6).
    pub fn key(&self) -> String {
        self.predicate.key()
    }

    /// Serializes header + payload with the Fig. 6 magic. (Bloom and zone
    /// map are rebuildable and not persisted.)
    pub fn serialize(&self) -> Vec<u8> {
        use feisu_format::encoding::varint;
        let mut out = Vec::new();
        out.extend_from_slice(&SMARTINDEX_MAGIC.to_le_bytes());
        varint::encode(self.block_id.raw(), &mut out);
        let key = self.predicate.key();
        varint::encode(key.len() as u64, &mut out);
        out.extend_from_slice(key.as_bytes());
        varint::encode(self.rows as u64, &mut out);
        let bits = self.bits.to_bitvec();
        varint::encode(bits.words().len() as u64, &mut out);
        for w in bits.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        match &self.nulls {
            None => out.push(0),
            Some(n) => {
                out.push(1);
                let nb = n.to_bitvec();
                varint::encode(nb.words().len() as u64, &mut out);
                for w in nb.words() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a serialized index. The predicate is reconstructed from its
    /// key string only for identification; callers match on [`SmartIndex::key`].
    pub fn deserialize(
        buf: &[u8],
        predicate: SimplePredicate,
        now: SimInstant,
    ) -> Result<SmartIndex> {
        use feisu_format::encoding::varint;
        if buf.len() < 4 || buf[..4] != SMARTINDEX_MAGIC.to_le_bytes() {
            return Err(FeisuError::Corrupt("bad SmartIndex magic".into()));
        }
        let mut pos = 4usize;
        let block_id = BlockId(varint::decode(buf, &mut pos)?);
        let key_len = varint::decode(buf, &mut pos)? as usize;
        let end = pos + key_len;
        if end > buf.len() {
            return Err(FeisuError::Corrupt("truncated SmartIndex key".into()));
        }
        let stored_key = std::str::from_utf8(&buf[pos..end])
            .map_err(|_| FeisuError::Corrupt("SmartIndex key not utf8".into()))?;
        if stored_key != predicate.key() {
            return Err(FeisuError::Corrupt(format!(
                "SmartIndex key mismatch: stored `{stored_key}`"
            )));
        }
        pos = end;
        let rows = varint::decode(buf, &mut pos)? as usize;
        let read_bits = |pos: &mut usize| -> Result<BitVec> {
            let nwords = varint::decode(buf, pos)? as usize;
            // The word count is corruption-controlled: multiply checked,
            // or a huge varint overflows (panicking in debug, wrapping —
            // and passing the bounds check — in release on 32-bit).
            let nbytes = nwords
                .checked_mul(8)
                .ok_or_else(|| FeisuError::Corrupt("SmartIndex word count overflow".into()))?;
            if buf.len().saturating_sub(*pos) < nbytes {
                return Err(FeisuError::Corrupt("truncated SmartIndex bits".into()));
            }
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
                *pos += 8;
            }
            BitVec::from_words(words, rows)
        };
        let bits = read_bits(&mut pos)?;
        let has_nulls = *buf
            .get(pos)
            .ok_or_else(|| FeisuError::Corrupt("missing null flag".into()))?;
        pos += 1;
        let nulls = if has_nulls == 1 {
            Some(CompressedBits::from_bitvec(&read_bits(&mut pos)?))
        } else {
            None
        };
        Ok(SmartIndex {
            block_id,
            predicate,
            rows,
            bits: CompressedBits::from_bitvec(&bits),
            nulls,
            range: None,
            bloom: None,
            created_at: now,
        })
    }
}

/// Evaluates a simple predicate over a column the slow way — the oracle
/// the index is tested against, and the fallback when no index exists.
pub fn scan_evaluate(column: &Column, predicate: &SimplePredicate) -> Result<BitVec> {
    let mut bits = BitVec::zeros(column.len());
    for i in 0..column.len() {
        let v = column.value(i);
        if v.is_null() {
            continue;
        }
        if compare(predicate.op, &v, &predicate.value)? == Truth::True {
            bits.set(i, true);
        }
    }
    Ok(bits)
}

/// Can the zone map / bloom of this block prove the predicate matches
/// nothing? Used to short-circuit index construction.
pub fn provably_empty(
    range: Option<&ZoneMap>,
    bloom: Option<&BloomFilter>,
    predicate: &SimplePredicate,
) -> bool {
    if let Some(z) = range {
        if !z.may_match(predicate.op, &predicate.value) {
            return true;
        }
    }
    if predicate.op == BinaryOp::Eq {
        if let Some(b) = bloom {
            if !b.may_contain(&predicate.value) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{DataType, Field, Schema, Value};

    fn test_block() -> Block {
        let schema = Schema::new(vec![
            Field::new("c2", DataType::Int64, true),
            Field::new("url", DataType::Utf8, false),
        ]);
        let c2 = Column::from_values(
            DataType::Int64,
            &(0..100)
                .map(|i| {
                    if i % 10 == 9 {
                        Value::Null
                    } else {
                        Value::Int64(i % 20)
                    }
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let url = Column::from_utf8((0..100).map(|i| format!("page{}", i % 5)).collect());
        Block::new(BlockId(7), schema, vec![c2, url]).unwrap()
    }

    fn pred(col: &str, op: BinaryOp, v: Value) -> SimplePredicate {
        SimplePredicate {
            column: col.into(),
            op,
            value: v,
        }
    }

    #[test]
    fn build_matches_scan_oracle() {
        let block = test_block();
        for (op, v) in [
            (BinaryOp::Gt, Value::Int64(5)),
            (BinaryOp::LtEq, Value::Int64(10)),
            (BinaryOp::Eq, Value::Int64(3)),
            (BinaryOp::NotEq, Value::Int64(0)),
        ] {
            let p = pred("c2", op, v);
            let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
            let oracle = scan_evaluate(block.column_by_name("c2").unwrap(), &p).unwrap();
            assert_eq!(idx.bits(), oracle, "op {op}");
        }
    }

    #[test]
    fn contains_predicate_indexable() {
        let block = test_block();
        let p = pred("url", BinaryOp::Contains, Value::Utf8("page1".into()));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        assert_eq!(idx.count(), 20);
    }

    #[test]
    fn negated_bits_exclude_nulls() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Gt, Value::Int64(5));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        let neg = idx.negated_bits();
        // Oracle: NOT (c2 > 5) ⇔ c2 <= 5 for non-null rows.
        let oracle = scan_evaluate(
            block.column_by_name("c2").unwrap(),
            &pred("c2", BinaryOp::LtEq, Value::Int64(5)),
        )
        .unwrap();
        assert_eq!(neg, oracle);
        // And positive + negative never cover a null row.
        let col = block.column_by_name("c2").unwrap();
        for i in 0..block.rows() {
            if col.value(i).is_null() {
                assert!(!idx.bits().get(i) && !neg.get(i), "null row {i} leaked");
            }
        }
    }

    #[test]
    fn selectivity_and_count() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Lt, Value::Int64(0));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        assert_eq!(idx.count(), 0);
        assert_eq!(idx.selectivity(), 0.0);
    }

    #[test]
    fn missing_column_errors() {
        let block = test_block();
        let p = pred("ghost", BinaryOp::Eq, Value::Int64(1));
        assert!(SmartIndex::build(&block, &p, SimInstant(0), false).is_err());
    }

    #[test]
    fn type_mismatch_errors() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Contains, Value::Utf8("x".into()));
        assert!(SmartIndex::build(&block, &p, SimInstant(0), false).is_err());
    }

    #[test]
    fn serialize_roundtrip() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Gt, Value::Int64(5));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        let bytes = idx.serialize();
        let back = SmartIndex::deserialize(&bytes, p, SimInstant(1)).unwrap();
        assert_eq!(back.bits(), idx.bits());
        assert_eq!(back.negated_bits(), idx.negated_bits());
        assert_eq!(back.block_id, BlockId(7));
    }

    #[test]
    fn serialize_rejects_wrong_key_or_magic() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Gt, Value::Int64(5));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        let mut bytes = idx.serialize();
        let wrong = pred("c2", BinaryOp::Gt, Value::Int64(6));
        assert!(SmartIndex::deserialize(&bytes, wrong, SimInstant(0)).is_err());
        bytes[0] ^= 0xff;
        assert!(SmartIndex::deserialize(
            &bytes,
            pred("c2", BinaryOp::Gt, Value::Int64(5)),
            SimInstant(0)
        )
        .is_err());
    }

    #[test]
    fn huge_word_count_rejected_not_panicking() {
        use feisu_format::encoding::varint;
        let block = test_block();
        let p = pred("c2", BinaryOp::Gt, Value::Int64(5));
        let idx = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        let bytes = idx.serialize();
        // Walk to the bits word-count varint and replace it with a value
        // whose byte size overflows usize: decode must error, not panic
        // (or wrap past the bounds check).
        let mut pos = 4usize;
        varint::decode(&bytes, &mut pos).unwrap(); // block id
        let key_len = varint::decode(&bytes, &mut pos).unwrap() as usize;
        pos += key_len;
        varint::decode(&bytes, &mut pos).unwrap(); // rows
        let mut evil = bytes[..pos].to_vec();
        varint::encode(u64::MAX, &mut evil);
        let got = SmartIndex::deserialize(&evil, p, SimInstant(0));
        assert!(matches!(got, Err(FeisuError::Corrupt(_))), "got {got:?}");
    }

    #[test]
    fn provably_empty_via_range_and_bloom() {
        let block = test_block();
        let p_absent = pred("c2", BinaryOp::Gt, Value::Int64(100));
        let idx = SmartIndex::build(
            &block,
            &pred("c2", BinaryOp::Gt, Value::Int64(0)),
            SimInstant(0),
            true,
        )
        .unwrap();
        assert!(provably_empty(
            idx.range.as_ref(),
            idx.bloom.as_ref(),
            &p_absent
        ));
        let p_eq_absent = pred("c2", BinaryOp::Eq, Value::Int64(12345));
        assert!(provably_empty(
            idx.range.as_ref(),
            idx.bloom.as_ref(),
            &p_eq_absent
        ));
        let p_present = pred("c2", BinaryOp::Eq, Value::Int64(3));
        assert!(!provably_empty(
            idx.range.as_ref(),
            idx.bloom.as_ref(),
            &p_present
        ));
    }

    #[test]
    fn footprint_accounts_payload() {
        let block = test_block();
        let p = pred("c2", BinaryOp::Gt, Value::Int64(5));
        let plain = SmartIndex::build(&block, &p, SimInstant(0), false).unwrap();
        let with_bloom = SmartIndex::build(&block, &p, SimInstant(0), true).unwrap();
        assert!(with_bloom.footprint() > plain.footprint());
    }
}
