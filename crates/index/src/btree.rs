//! B-tree per-column index — the comparison baseline of Fig. 9b.
//!
//! "For a comparison, we also implemented B-tree index in Feisu." A
//! `BTreeColumnIndex` maps sorted column values to row ids; a probe walks
//! the qualifying key range and materializes the row bitmap. Unlike
//! SmartIndex it answers *any* constant for the indexed column (no
//! warm-up per predicate), but every probe still pays a range-walk per
//! query — which is why the paper's Fig. 9b shows it flat while
//! SmartIndex keeps improving as more predicates are cached.

use crate::bitvec::BitVec;
use feisu_common::{FeisuError, Result};
use feisu_format::{Column, Value};
use feisu_sql::ast::BinaryOp;
use std::cmp::Ordering;

/// Sorted (value, row) pairs over one column of one block.
#[derive(Debug, Clone)]
pub struct BTreeColumnIndex {
    /// Non-null entries sorted by value (total order).
    entries: Vec<(Value, u32)>,
    rows: usize,
}

impl BTreeColumnIndex {
    /// Builds by sorting the column once (the classic index build cost).
    pub fn build(column: &Column) -> BTreeColumnIndex {
        let mut entries: Vec<(Value, u32)> = Vec::with_capacity(column.len());
        for i in 0..column.len() {
            let v = column.value(i);
            if !v.is_null() {
                entries.push((v, i as u32));
            }
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        BTreeColumnIndex {
            entries,
            rows: column.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rows the index covers (= block rows, including nulls).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// First entry index whose value is >= `v` (lower bound).
    fn lower_bound(&self, v: &Value) -> usize {
        self.entries
            .partition_point(|(e, _)| e.total_cmp(v) == Ordering::Less)
    }

    /// First entry index whose value is > `v` (upper bound).
    fn upper_bound(&self, v: &Value) -> usize {
        self.entries
            .partition_point(|(e, _)| e.total_cmp(v) != Ordering::Greater)
    }

    /// Serves `column OP value` as a row bitmap. `CONTAINS` cannot be
    /// served by an ordered index.
    pub fn lookup(&self, op: BinaryOp, value: &Value) -> Result<BitVec> {
        let mut bits = BitVec::zeros(self.rows);
        let (lo, hi) = match op {
            BinaryOp::Eq => (self.lower_bound(value), self.upper_bound(value)),
            BinaryOp::Lt => (0, self.lower_bound(value)),
            BinaryOp::LtEq => (0, self.upper_bound(value)),
            BinaryOp::Gt => (self.upper_bound(value), self.entries.len()),
            BinaryOp::GtEq => (self.lower_bound(value), self.entries.len()),
            BinaryOp::NotEq => {
                // Complement of the equality range over non-null entries.
                let (elo, ehi) = (self.lower_bound(value), self.upper_bound(value));
                for (_, row) in &self.entries[..elo] {
                    bits.set(*row as usize, true);
                }
                for (_, row) in &self.entries[ehi..] {
                    bits.set(*row as usize, true);
                }
                return Ok(bits);
            }
            other => {
                return Err(FeisuError::Index(format!(
                    "B-tree index cannot serve operator {other}"
                )))
            }
        };
        for (_, row) in &self.entries[lo..hi] {
            bits.set(*row as usize, true);
        }
        Ok(bits)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        self.entries
            .iter()
            .map(|(v, _)| v.footprint() + 4)
            .sum::<usize>()
            + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smart::scan_evaluate;
    use feisu_format::DataType;
    use feisu_sql::cnf::SimplePredicate;

    fn column() -> Column {
        Column::from_values(
            DataType::Int64,
            &(0..500)
                .map(|i| {
                    if i % 23 == 0 {
                        Value::Null
                    } else {
                        Value::Int64((i * 37) % 101)
                    }
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn lookup_matches_scan_oracle_all_ops() {
        let col = column();
        let idx = BTreeColumnIndex::build(&col);
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            for v in [-5i64, 0, 13, 50, 100, 200] {
                let value = Value::Int64(v);
                let got = idx.lookup(op, &value).unwrap();
                let want = scan_evaluate(
                    &col,
                    &SimplePredicate {
                        column: "x".into(),
                        op,
                        value: value.clone(),
                    },
                )
                .unwrap();
                assert_eq!(got, want, "op {op} value {v}");
            }
        }
    }

    #[test]
    fn nulls_never_match() {
        let col = column();
        let idx = BTreeColumnIndex::build(&col);
        let all = idx.lookup(BinaryOp::GtEq, &Value::Int64(i64::MIN)).unwrap();
        assert_eq!(all.count_ones(), idx.len());
        assert!(all.count_ones() < col.len(), "nulls excluded");
    }

    #[test]
    fn contains_unsupported() {
        let col = Column::from_utf8(vec!["ab".into(), "cd".into()]);
        let idx = BTreeColumnIndex::build(&col);
        assert!(idx
            .lookup(BinaryOp::Contains, &Value::Utf8("a".into()))
            .is_err());
    }

    #[test]
    fn string_index_range() {
        let col = Column::from_utf8(vec![
            "banana".into(),
            "apple".into(),
            "cherry".into(),
            "apricot".into(),
        ]);
        let idx = BTreeColumnIndex::build(&col);
        let lt_b = idx.lookup(BinaryOp::Lt, &Value::Utf8("b".into())).unwrap();
        let ones: Vec<usize> = lt_b.iter_ones().collect();
        assert_eq!(ones, vec![1, 3]); // apple, apricot
    }

    #[test]
    fn empty_column() {
        let col = Column::from_i64(vec![]);
        let idx = BTreeColumnIndex::build(&col);
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(BinaryOp::Eq, &Value::Int64(1)).unwrap().len(), 0);
    }
}
