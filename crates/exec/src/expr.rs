//! Expression evaluation over record batches.
//!
//! Two paths:
//! * a typed fast path for `column OP literal` comparisons on numeric
//!   columns — the predicate shape that dominates Feisu's workload
//!   (Fig. 8: scans with simple filters are >99% of queries);
//! * a general row-wise fallback delegating to the `feisu-sql` reference
//!   interpreter, guaranteeing identical semantics to the oracle.

use crate::batch::{BatchRow, RecordBatch};
use feisu_common::{FeisuError, Result};
use feisu_format::column::ColumnData;
use feisu_format::{Column, DataType, Value};
use feisu_index::BitVec;
use feisu_sql::ast::{BinaryOp, Expr};
use feisu_sql::eval::{eval, eval_truth};

/// Evaluates a boolean expression into a selection bitmap (bit set ⇔ row
/// passes the filter; SQL-unknown rows do not pass).
pub fn eval_predicate(batch: &RecordBatch, expr: &Expr) -> Result<BitVec> {
    if let Some(bits) = fast_compare(batch, expr)? {
        return Ok(bits);
    }
    // Decompose AND/OR over fast-path-able halves before falling back.
    if let Expr::Binary { op, left, right } = expr {
        match op {
            BinaryOp::And => {
                let mut bits = eval_predicate(batch, left)?;
                bits.and_assign(&eval_predicate(batch, right)?)?;
                return Ok(bits);
            }
            BinaryOp::Or => {
                let mut bits = eval_predicate(batch, left)?;
                bits.or_assign(&eval_predicate(batch, right)?)?;
                return Ok(bits);
            }
            _ => {}
        }
    }
    let mut bits = BitVec::zeros(batch.rows());
    for i in 0..batch.rows() {
        let row = BatchRow { batch, row: i };
        if eval_truth(expr, &row)?.passes() {
            bits.set(i, true);
        }
    }
    Ok(bits)
}

/// Typed fast path: `col OP literal` over Int64/Float64 columns.
fn fast_compare(batch: &RecordBatch, expr: &Expr) -> Result<Option<BitVec>> {
    let Expr::Binary { op, left, right } = expr else {
        return Ok(None);
    };
    if !op.is_comparison() || *op == BinaryOp::Contains {
        return Ok(None);
    }
    let (col_name, lit, op) = match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
        (Expr::Literal(v), Expr::Column(c)) => match op.flip() {
            Some(f) => (c, v, f),
            None => return Ok(None),
        },
        _ => return Ok(None),
    };
    let Some(column) = batch.column_by_name(col_name) else {
        return Err(FeisuError::Execution(format!(
            "unknown column `{col_name}`"
        )));
    };
    let validity = column.validity();
    let mut bits = BitVec::zeros(column.len());
    match (column.data(), lit) {
        (ColumnData::Int64(vals), Value::Int64(t)) => {
            fill(&mut bits, vals, validity, |v| cmp_ord(op, v.cmp(t)));
        }
        (ColumnData::Int64(vals), Value::Float64(t)) => {
            fill(&mut bits, vals, validity, |v| {
                (*v as f64)
                    .partial_cmp(t)
                    .map(|o| cmp_ord(op, o))
                    .unwrap_or(false)
            });
        }
        (ColumnData::Float64(vals), Value::Float64(t)) => {
            fill(&mut bits, vals, validity, |v| {
                v.partial_cmp(t).map(|o| cmp_ord(op, o)).unwrap_or(false)
            });
        }
        (ColumnData::Float64(vals), Value::Int64(t)) => {
            let t = *t as f64;
            fill(&mut bits, vals, validity, |v| {
                v.partial_cmp(&t).map(|o| cmp_ord(op, o)).unwrap_or(false)
            });
        }
        (ColumnData::Utf8(vals), Value::Utf8(t)) => {
            fill(&mut bits, vals, validity, |v| {
                cmp_ord(op, v.as_str().cmp(t))
            });
        }
        _ => return Ok(None),
    }
    Ok(Some(bits))
}

/// Accumulates 64 predicate results into a u64 and emits them with one
/// word-store each, instead of a read-modify-write per matching row.
#[inline]
fn fill<T>(
    bits: &mut BitVec,
    vals: &[T],
    validity: &feisu_format::column::Validity,
    pred: impl Fn(&T) -> bool,
) {
    let n = vals.len();
    if validity.null_count() == 0 {
        let mut wi = 0usize;
        let mut i = 0usize;
        while i < n {
            let end = (i + 64).min(n);
            let mut acc = 0u64;
            for (j, v) in vals[i..end].iter().enumerate() {
                acc |= (pred(v) as u64) << j;
            }
            bits.store_word(wi, acc);
            wi += 1;
            i = end;
        }
    } else {
        // Walk only the valid bits of each validity word; null slots stay
        // unset in the accumulator.
        let vwords = validity.words();
        let mut wi = 0usize;
        let mut i = 0usize;
        while i < n {
            let mut acc = 0u64;
            let mut m = vwords[wi];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                let j = i + b;
                if j < n && pred(&vals[j]) {
                    acc |= 1u64 << b;
                }
            }
            bits.store_word(wi, acc);
            wi += 1;
            i += 64;
        }
    }
}

#[inline]
fn cmp_ord(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => unreachable!("fast path only handles comparisons"),
    }
}

/// Evaluates a scalar expression into a column over the batch.
pub fn eval_to_column(batch: &RecordBatch, expr: &Expr, out_type: DataType) -> Result<Column> {
    // Column references copy through directly; an Int64 column headed for
    // a Float64 slot widens columnar-ly (same nulls, no per-row boxing).
    if let Expr::Column(name) = expr {
        if let Some(c) = batch.column_by_name(name) {
            if c.data_type() == out_type {
                return Ok(c.clone());
            }
            if c.data_type() == DataType::Int64 && out_type == DataType::Float64 {
                let vals: Vec<f64> = c.i64_slice().iter().map(|&v| v as f64).collect();
                return Ok(Column::new(ColumnData::Float64(vals), c.validity().clone()));
            }
        }
    }
    let mut values = Vec::with_capacity(batch.rows());
    for i in 0..batch.rows() {
        let row = BatchRow { batch, row: i };
        let v = eval(expr, &row)?;
        values.push(coerce(v, out_type)?);
    }
    Column::from_values(out_type, &values).ok_or_else(|| {
        FeisuError::Execution(format!("expression `{expr}` produced ill-typed values"))
    })
}

/// Widens a value to the column's declared type where SQL allows it.
pub fn coerce(v: Value, target: DataType) -> Result<Value> {
    Ok(match (v, target) {
        (Value::Null, _) => Value::Null,
        (Value::Int64(i), DataType::Float64) => Value::Float64(i as f64),
        (v, t) if v.data_type() == Some(t) => v,
        (v, t) => {
            return Err(FeisuError::Execution(format!(
                "value {v} does not fit column type {t}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{Field, Schema};
    use feisu_sql::parser::parse_expr;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("n", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
            Field::new("s", DataType::Utf8, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(1),
                        Value::Null,
                        Value::Int64(5),
                        Value::Int64(10),
                    ],
                )
                .unwrap(),
                Column::from_f64(vec![0.5, 1.5, 2.5, 3.5]),
                Column::from_utf8(vec![
                    "apple".into(),
                    "banana".into(),
                    "cherry".into(),
                    "apricot".into(),
                ]),
            ],
        )
        .unwrap()
    }

    fn sel(src: &str) -> Vec<usize> {
        eval_predicate(&batch(), &parse_expr(src).unwrap())
            .unwrap()
            .iter_ones()
            .collect()
    }

    #[test]
    fn fast_path_int_comparisons() {
        assert_eq!(sel("n > 1"), vec![2, 3]);
        assert_eq!(sel("n <= 5"), vec![0, 2]);
        assert_eq!(sel("n = 10"), vec![3]);
        assert_eq!(sel("n != 1"), vec![2, 3]); // null row excluded
    }

    #[test]
    fn fast_path_mixed_numeric() {
        assert_eq!(sel("n > 4.5"), vec![2, 3]);
        assert_eq!(sel("f >= 2"), vec![2, 3]);
        assert_eq!(sel("2 > f"), vec![0, 1]); // flipped literal-column
    }

    #[test]
    fn fast_path_strings() {
        assert_eq!(sel("s < 'b'"), vec![0, 3]);
        assert_eq!(sel("s = 'cherry'"), vec![2]);
    }

    #[test]
    fn and_or_composition() {
        assert_eq!(sel("n > 1 AND f < 3"), vec![2]);
        assert_eq!(sel("n = 1 OR s = 'cherry'"), vec![0, 2]);
    }

    #[test]
    fn fallback_matches_oracle_for_complex_exprs() {
        // CONTAINS, IS NULL, arithmetic — all fallback territory.
        assert_eq!(sel("s CONTAINS 'an'"), vec![1]);
        assert_eq!(sel("n IS NULL"), vec![1]);
        assert_eq!(sel("n + 1 > 5"), vec![2, 3]);
        assert_eq!(sel("NOT (n > 1)"), vec![0]);
    }

    #[test]
    fn fast_and_fallback_agree() {
        // Force the fallback by wrapping in NOT NOT, compare results.
        let b = batch();
        for src in ["n > 1", "f <= 2.5", "s >= 'b'", "n = 5"] {
            let fast = eval_predicate(&b, &parse_expr(src).unwrap()).unwrap();
            let slow =
                eval_predicate(&b, &parse_expr(&format!("NOT NOT ({src})")).unwrap()).unwrap();
            assert_eq!(fast, slow, "{src}");
        }
    }

    #[test]
    fn unknown_column_errors() {
        let b = batch();
        assert!(eval_predicate(&b, &parse_expr("ghost > 1").unwrap()).is_err());
    }

    #[test]
    fn eval_to_column_projection_and_arith() {
        let b = batch();
        let c = eval_to_column(&b, &parse_expr("n").unwrap(), DataType::Int64).unwrap();
        assert_eq!(c.value(3), Value::Int64(10));
        let c = eval_to_column(&b, &parse_expr("n * 2").unwrap(), DataType::Int64).unwrap();
        assert_eq!(c.value(0), Value::Int64(2));
        assert_eq!(c.value(1), Value::Null);
        // Int expr into float column widens.
        let c = eval_to_column(&b, &parse_expr("n + 1").unwrap(), DataType::Float64).unwrap();
        assert_eq!(c.value(0), Value::Float64(2.0));
    }

    #[test]
    fn eval_to_column_widens_int_column_without_boxing() {
        let b = batch();
        let c = eval_to_column(&b, &parse_expr("n").unwrap(), DataType::Float64).unwrap();
        assert_eq!(c.data_type(), DataType::Float64);
        assert_eq!(c.value(0), Value::Float64(1.0));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(3), Value::Float64(10.0));
        // Identical to what the row-wise fallback produces (`n + 0` defeats
        // the columnar fast path).
        let slow = eval_to_column(&b, &parse_expr("n + 0").unwrap(), DataType::Float64).unwrap();
        assert_eq!(c, slow);
    }

    #[test]
    fn fill_word_boundaries_and_nulls() {
        // Column lengths straddling word boundaries, with nulls sprinkled
        // in: the word-accumulator fill must agree with a row-wise oracle.
        for n in [1usize, 63, 64, 65, 127, 128, 130, 200] {
            let vals: Vec<Value> = (0..n as i64)
                .map(|i| {
                    if i % 11 == 3 {
                        Value::Null
                    } else {
                        Value::Int64(i % 10)
                    }
                })
                .collect();
            let schema = Schema::new(vec![Field::new("v", DataType::Int64, true)]);
            let b = RecordBatch::new(
                schema,
                vec![Column::from_values(DataType::Int64, &vals).unwrap()],
            )
            .unwrap();
            let fast = eval_predicate(&b, &parse_expr("v >= 5").unwrap()).unwrap();
            // NOT NOT defeats the fast path, forcing the row-wise oracle.
            let slow = eval_predicate(&b, &parse_expr("NOT NOT (v >= 5)").unwrap()).unwrap();
            assert_eq!(fast, slow, "rows={n}");
        }
    }

    #[test]
    fn eval_to_column_type_error() {
        let b = batch();
        assert!(eval_to_column(&b, &parse_expr("s").unwrap(), DataType::Int64).is_err());
    }
}
