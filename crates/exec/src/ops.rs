//! Simple row-set operators: filter, project, limit.

use crate::batch::RecordBatch;
use crate::expr::{eval_predicate, eval_to_column};
use feisu_common::Result;
use feisu_format::{Column, Schema};
use feisu_sql::ast::Expr;

/// Keeps the rows passing `predicate`.
pub fn filter(batch: &RecordBatch, predicate: &Expr) -> Result<RecordBatch> {
    let bits = eval_predicate(batch, predicate)?;
    batch.select(&bits)
}

/// Computes the projection expressions into a new batch with
/// `output_schema`.
pub fn project(
    batch: &RecordBatch,
    exprs: &[(Expr, String)],
    output_schema: &Schema,
) -> Result<RecordBatch> {
    let columns: Vec<Column> = exprs
        .iter()
        .enumerate()
        .map(|(i, (e, _))| eval_to_column(batch, e, output_schema.field(i).data_type))
        .collect::<Result<_>>()?;
    RecordBatch::new(output_schema.clone(), columns)
}

/// Keeps the first `fetch` rows.
pub fn limit(batch: &RecordBatch, fetch: u64) -> Result<RecordBatch> {
    if batch.rows() as u64 <= fetch {
        return Ok(batch.clone());
    }
    let indices: Vec<usize> = (0..fetch as usize).collect();
    batch.take(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{DataType, Field, Value};
    use feisu_sql::parser::parse_expr;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Int64, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_i64(vec![10, 20, 30, 40, 50]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_passing_rows() {
        let out = filter(&batch(), &parse_expr("a > 2 AND b < 50").unwrap()).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value_at(0, "a"), Some(Value::Int64(3)));
    }

    #[test]
    fn project_computes_expressions() {
        let schema = Schema::new(vec![
            Field::new("sum", DataType::Int64, true),
            Field::new("a", DataType::Int64, true),
        ]);
        let exprs = vec![
            (parse_expr("a + b").unwrap(), "sum".to_string()),
            (parse_expr("a").unwrap(), "a".to_string()),
        ];
        let out = project(&batch(), &exprs, &schema).unwrap();
        assert_eq!(out.value_at(0, "sum"), Some(Value::Int64(11)));
        assert_eq!(out.value_at(4, "sum"), Some(Value::Int64(55)));
    }

    #[test]
    fn limit_truncates() {
        let out = limit(&batch(), 2).unwrap();
        assert_eq!(out.rows(), 2);
        let out = limit(&batch(), 99).unwrap();
        assert_eq!(out.rows(), 5);
        let out = limit(&batch(), 0).unwrap();
        assert_eq!(out.rows(), 0);
    }
}
