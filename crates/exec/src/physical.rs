//! The physical plan layer.
//!
//! [`lower`] turns an optimized [`LogicalPlan`] into a [`PhysicalPlan`]:
//! a tree of typed physical operators in which every distributed decision
//! is already made. In particular the paper's partial-aggregation
//! pushdown (§III-B: leaves pre-aggregate, stems merge bottom-up) is a
//! *plan-time* property here — an `Aggregate` over a bare `Scan` lowers
//! to [`PhysicalPlan::FinalAggregate`] over a
//! [`PhysicalPlan::DistributedScan`] carrying the
//! [`AggStage`], and the scan node also carries the precomputed
//! CNF split (indexable clauses vs residual expressions) and the
//! canonical→storage column map that leaf servers rename through.
//!
//! The engine in `feisu-core` interprets this tree; each node knows its
//! own master-side CPU price via [`PhysicalPlan::master_cpu_cost`], so
//! cost accounting lives with the operator instead of being sprinkled
//! through the interpreter.

use feisu_cluster::CostModel;
use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, Result, SimDuration};
use feisu_format::{DataType, Schema};
use feisu_sql::analyze::Catalog;
use feisu_sql::ast::{Expr, JoinKind};
use feisu_sql::cnf::{to_cnf, Cnf, Disjunct};
use feisu_sql::plan::{AggExpr, AggStage, LogicalPlan};

/// Physical operators. `DistributedScan` is the only node that touches
/// the cluster; everything above it runs on the master over merged
/// results.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// One table scan, dissected into per-block leaf tasks by the engine.
    DistributedScan {
        table: String,
        /// Storage column names to read, parallel to `output_schema`.
        projection: Vec<String>,
        /// The full pushed-down predicate (display + task signatures).
        predicate: Option<Expr>,
        /// Indexable conjunctive clauses of `predicate` (all-simple
        /// disjuncts — what SmartIndex can key on).
        cnf: Cnf,
        /// Non-indexable clauses, evaluated row-wise on the leaves.
        residual: Vec<Expr>,
        /// Partial aggregation pushed into the leaves, decided at
        /// lowering time.
        agg_stage: Option<AggStage>,
        /// Canonical → storage column-name map for the whole task.
        name_map: FxHashMap<String, String>,
        /// Scan output schema in canonical (possibly qualified) names.
        output_schema: Schema,
    },
    /// Merges partial-aggregate transports produced by a pushed-down
    /// [`AggStage`] into final values.
    FinalAggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<(Expr, String, DataType)>,
        aggregates: Vec<AggExpr>,
        output_schema: Schema,
    },
    /// Full hash aggregation over raw input rows (input was not a bare
    /// scan, so nothing could be pushed down).
    HashAggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<(Expr, String, DataType)>,
        aggregates: Vec<AggExpr>,
        output_schema: Schema,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<(Expr, String)>,
        output_schema: Schema,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        kind: JoinKind,
        on: Vec<Expr>,
        output_schema: Schema,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(Expr, /*descending=*/ bool)>,
        fetch: Option<u64>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        fetch: u64,
    },
    /// A provably-empty relation (e.g. `WHERE FALSE`): produces zero rows
    /// without touching the cluster or billing any master CPU.
    Empty { output_schema: Schema },
}

impl PhysicalPlan {
    /// Operator name as shown in plan renderings and profile spans.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::DistributedScan { .. } => "DistributedScan",
            PhysicalPlan::FinalAggregate { .. } => "FinalAggregate",
            PhysicalPlan::HashAggregate { .. } => "HashAggregate",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Limit { .. } => "Limit",
            PhysicalPlan::Empty { .. } => "Empty",
        }
    }

    /// The operator's output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::DistributedScan { output_schema, .. }
            | PhysicalPlan::FinalAggregate { output_schema, .. }
            | PhysicalPlan::HashAggregate { output_schema, .. }
            | PhysicalPlan::Project { output_schema, .. }
            | PhysicalPlan::HashJoin { output_schema, .. }
            | PhysicalPlan::Empty { output_schema } => output_schema.clone(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Master-side CPU this operator charges for one evaluation, given
    /// its children's output row counts (`inputs[0]` = left/only child,
    /// `inputs[1]` = right child). Distributed scans charge nothing here:
    /// their time is accounted on the leaf/stem critical path.
    pub fn master_cpu_cost(&self, cost: &CostModel, inputs: &[usize]) -> SimDuration {
        let rows = |i: usize| inputs.get(i).copied().unwrap_or(0);
        match self {
            PhysicalPlan::DistributedScan { .. }
            | PhysicalPlan::Limit { .. }
            | PhysicalPlan::Empty { .. } => SimDuration::ZERO,
            PhysicalPlan::Filter { .. } => cost.predicate_eval(rows(0).max(1)),
            PhysicalPlan::Project { .. } => cost.project(rows(0).max(1)),
            PhysicalPlan::HashAggregate { .. } => cost.agg_update(rows(0).max(1)),
            PhysicalPlan::FinalAggregate { .. } => cost.agg_merge(rows(0).max(1)),
            PhysicalPlan::HashJoin { .. } => {
                let (l, r) = (rows(0), rows(1));
                if l + r == 0 {
                    // Even an empty join pays one probe of bookkeeping.
                    cost.join_probe(1)
                } else {
                    cost.join_build(l) + cost.join_probe(r)
                }
            }
            PhysicalPlan::Sort { .. } => {
                // n·⌈log₂ n⌉ comparisons, floored at two rows.
                let n = rows(0).max(2);
                cost.sort_cmp(n * (usize::BITS - n.leading_zeros()) as usize)
            }
        }
    }

    /// Pretty multi-line plan rendering (EXPLAIN-style) with pushdown
    /// annotations on distributed scans.
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, level: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(level);
        match self {
            PhysicalPlan::DistributedScan {
                table,
                projection,
                predicate,
                agg_stage,
                ..
            } => {
                let _ = write!(out, "{pad}DistributedScan: {table} cols={projection:?}");
                if let Some(p) = predicate {
                    let _ = write!(out, " filter={p}");
                }
                if let Some(stage) = agg_stage {
                    let aggs: Vec<&str> =
                        stage.aggregates.iter().map(|a| a.name.as_str()).collect();
                    let _ = write!(out, " [agg pushed: {}", aggs.join(", "));
                    if !stage.group_by.is_empty() {
                        let groups: Vec<&str> =
                            stage.group_by.iter().map(|(_, n, _)| n.as_str()).collect();
                        let _ = write!(out, " group by {}", groups.join(", "));
                    }
                    out.push(']');
                }
                out.push('\n');
            }
            PhysicalPlan::FinalAggregate {
                input,
                group_by,
                aggregates,
                ..
            }
            | PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
                ..
            } => {
                let groups: Vec<&str> = group_by.iter().map(|(_, n, _)| n.as_str()).collect();
                let aggs: Vec<&str> = aggregates.iter().map(|a| a.name.as_str()).collect();
                let _ = writeln!(out, "{pad}{}: group={groups:?} aggs={aggs:?}", self.name());
                input.fmt_indent(out, level + 1);
            }
            PhysicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter: {predicate}");
                input.fmt_indent(out, level + 1);
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let _ = writeln!(out, "{pad}Project: [{}]", cols.join(", "));
                input.fmt_indent(out, level + 1);
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                kind,
                on,
                ..
            } => {
                let conds: Vec<String> = on.iter().map(|e| e.to_string()).collect();
                let _ = writeln!(out, "{pad}HashJoin: {kind:?} on [{}]", conds.join(", "));
                left.fmt_indent(out, level + 1);
                right.fmt_indent(out, level + 1);
            }
            PhysicalPlan::Sort { input, keys, fetch } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, d)| format!("{e}{}", if *d { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort: [{}] fetch={fetch:?}", ks.join(", "));
                input.fmt_indent(out, level + 1);
            }
            PhysicalPlan::Limit { input, fetch } => {
                let _ = writeln!(out, "{pad}Limit: {fetch}");
                input.fmt_indent(out, level + 1);
            }
            PhysicalPlan::Empty { .. } => {
                let _ = writeln!(out, "{pad}Empty");
            }
        }
    }
}

/// Lowers an optimized logical plan to a physical plan, deciding
/// aggregation pushdown and precomputing everything the distributed scan
/// needs (CNF split, name map). `catalog` supplies each table's *storage*
/// schema — needed to tell flattened-JSON dotted columns apart from
/// qualified references.
pub fn lower(plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<PhysicalPlan> {
    match plan {
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => {
            // Push partial aggregation to the leaves when the input is a
            // bare scan (the dominant shape, Fig. 8).
            if let LogicalPlan::Scan {
                table,
                projection,
                predicate,
                output_schema: scan_schema,
                ..
            } = input.as_ref()
            {
                let stage = AggStage {
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                };
                let scan = lower_scan(
                    table,
                    projection,
                    predicate.as_ref(),
                    scan_schema,
                    Some(stage),
                    catalog,
                )?;
                return Ok(PhysicalPlan::FinalAggregate {
                    input: Box::new(scan),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                    output_schema: output_schema.clone(),
                });
            }
            Ok(PhysicalPlan::HashAggregate {
                input: Box::new(lower(input, catalog)?),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
                output_schema: output_schema.clone(),
            })
        }
        LogicalPlan::Scan {
            table,
            projection,
            predicate,
            output_schema,
            ..
        } => lower_scan(
            table,
            projection,
            predicate.as_ref(),
            output_schema,
            None,
            catalog,
        ),
        LogicalPlan::Filter { input, predicate } => Ok(PhysicalPlan::Filter {
            input: Box::new(lower(input, catalog)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => Ok(PhysicalPlan::Project {
            input: Box::new(lower(input, catalog)?),
            exprs: exprs.clone(),
            output_schema: output_schema.clone(),
        }),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => Ok(PhysicalPlan::HashJoin {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
            kind: *kind,
            on: on.clone(),
            output_schema: output_schema.clone(),
        }),
        LogicalPlan::Sort { input, keys, fetch } => Ok(PhysicalPlan::Sort {
            input: Box::new(lower(input, catalog)?),
            keys: keys.clone(),
            fetch: *fetch,
        }),
        LogicalPlan::Limit { input, fetch } => Ok(PhysicalPlan::Limit {
            input: Box::new(lower(input, catalog)?),
            fetch: *fetch,
        }),
        LogicalPlan::Empty { output_schema } => Ok(PhysicalPlan::Empty {
            output_schema: output_schema.clone(),
        }),
    }
}

/// Builds the `DistributedScan` node: canonical→storage name map plus the
/// CNF split into indexable clauses and residual expressions.
fn lower_scan(
    table: &str,
    projection: &[String],
    predicate: Option<&Expr>,
    output_schema: &Schema,
    agg_stage: Option<AggStage>,
    catalog: &dyn Catalog,
) -> Result<PhysicalPlan> {
    let storage_schema = catalog
        .table_schema(table)
        .ok_or_else(|| FeisuError::Execution(format!("unknown table `{table}` during lowering")))?;
    // Canonical → storage name map covers the whole scan output.
    let mut name_map: FxHashMap<String, String> = FxHashMap::default();
    for (canon, storage) in output_schema
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .zip(projection.iter().cloned())
    {
        name_map.insert(canon, storage);
    }
    // Predicate columns outside the projection also need mapping: a
    // canonical name is `binding.col` or bare `col`; strip qualifier.
    if let Some(p) = predicate {
        let mut cols = Vec::new();
        p.columns(&mut cols);
        for c in cols {
            // Dotted names may be real storage columns (flattened JSON
            // paths); strip the table qualifier only when the full name
            // is not a column of the table itself.
            let storage = if storage_schema.index_of(&c).is_some() {
                c.clone()
            } else {
                c.rsplit('.').next().unwrap_or(&c).to_string()
            };
            name_map.entry(c.clone()).or_insert(storage);
        }
    }

    // Split the predicate into indexable CNF clauses (all-simple
    // disjuncts — SmartIndex can serve them) and residual expressions.
    let (cnf, residual) = match predicate {
        None => (Cnf::default(), Vec::new()),
        Some(p) => {
            let full = to_cnf(p);
            let mut indexable = Vec::new();
            let mut residual = Vec::new();
            for clause in full.clauses {
                let all_simple = clause
                    .disjuncts
                    .iter()
                    .all(|d| matches!(d, Disjunct::Simple(_)));
                if all_simple {
                    indexable.push(clause);
                } else {
                    residual.push(clause.to_expr());
                }
            }
            (Cnf { clauses: indexable }, residual)
        }
    };

    Ok(PhysicalPlan::DistributedScan {
        table: table.to_string(),
        projection: projection.to_vec(),
        predicate: predicate.cloned(),
        cnf,
        residual,
        agg_stage,
        name_map,
        output_schema: output_schema.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::Field;
    use feisu_sql::analyze::analyze;
    use feisu_sql::optimizer::optimize;
    use feisu_sql::parser::parse_query;
    use feisu_sql::plan::build_plan;
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "t1".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("clicks", DataType::Int64, true),
                Field::new("score", DataType::Float64, false),
            ]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("rank", DataType::Int64, false),
            ]),
        );
        m
    }

    fn physical(sql: &str) -> PhysicalPlan {
        let q = parse_query(sql).unwrap();
        let cat = catalog();
        let r = analyze(&q, &cat).unwrap();
        let plan = optimize(build_plan(&r).unwrap()).unwrap();
        lower(&plan, &cat).unwrap()
    }

    #[test]
    fn aggregate_over_scan_pushes_down() {
        let p = physical("SELECT COUNT(*) FROM t1 WHERE clicks > 5");
        let PhysicalPlan::Project { input: agg, .. } = &p else {
            panic!("expected Project root, got {p:?}");
        };
        let PhysicalPlan::FinalAggregate { input, .. } = agg.as_ref() else {
            panic!("expected FinalAggregate, got {agg:?}");
        };
        let PhysicalPlan::DistributedScan {
            agg_stage: Some(stage),
            cnf,
            residual,
            ..
        } = input.as_ref()
        else {
            panic!("expected DistributedScan with pushed agg, got {input:?}");
        };
        assert!(stage.is_count_star_only());
        assert_eq!(cnf.clauses.len(), 1, "indexable simple predicate");
        assert!(residual.is_empty());
    }

    #[test]
    fn aggregate_over_join_stays_on_master() {
        let p = physical("SELECT rank, COUNT(*) FROM t1 JOIN t2 ON t1.url = t2.url GROUP BY rank");
        let s = p.display_indent();
        assert!(s.contains("HashAggregate:"), "{s}");
        assert!(s.contains("HashJoin: Inner"), "{s}");
        assert!(!s.contains("agg pushed"), "{s}");
    }

    #[test]
    fn pushdown_annotation_renders_aggs_and_groups() {
        let p = physical("SELECT url, COUNT(*), SUM(clicks) FROM t1 GROUP BY url");
        let s = p.display_indent();
        assert!(
            s.contains("[agg pushed: COUNT(*), SUM(clicks) group by url]"),
            "{s}"
        );
        assert!(s.contains("FinalAggregate:"), "{s}");
    }

    #[test]
    fn cnf_split_separates_residual_clauses() {
        // `clicks + 1 > 3` is not a simple predicate; `score > 0` is.
        let p = physical("SELECT url FROM t1 WHERE score > 0 AND clicks + 1 > 3");
        fn find_scan(p: &PhysicalPlan) -> Option<&PhysicalPlan> {
            match p {
                PhysicalPlan::DistributedScan { .. } => Some(p),
                PhysicalPlan::FinalAggregate { input, .. }
                | PhysicalPlan::HashAggregate { input, .. }
                | PhysicalPlan::Filter { input, .. }
                | PhysicalPlan::Project { input, .. }
                | PhysicalPlan::Sort { input, .. }
                | PhysicalPlan::Limit { input, .. } => find_scan(input),
                PhysicalPlan::HashJoin { left, right, .. } => {
                    find_scan(left).or_else(|| find_scan(right))
                }
                PhysicalPlan::Empty { .. } => None,
            }
        }
        let PhysicalPlan::DistributedScan { cnf, residual, .. } =
            find_scan(&p).expect("scan in plan")
        else {
            unreachable!()
        };
        assert_eq!(cnf.clauses.len(), 1, "simple clause is indexable");
        assert_eq!(residual.len(), 1, "arithmetic clause is residual");
    }

    #[test]
    fn name_map_strips_qualifiers_for_join_scans() {
        let p =
            physical("SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url WHERE t1.clicks > 5");
        let PhysicalPlan::Project { input, .. } = &p else {
            panic!("{p:?}");
        };
        let PhysicalPlan::HashJoin { left, .. } = input.as_ref() else {
            panic!("{input:?}");
        };
        let PhysicalPlan::DistributedScan { name_map, .. } = left.as_ref() else {
            panic!("{left:?}");
        };
        assert_eq!(
            name_map.get("t1.clicks").map(String::as_str),
            Some("clicks")
        );
        assert_eq!(name_map.get("t1.url").map(String::as_str), Some("url"));
    }

    #[test]
    fn master_cpu_costs_match_legacy_predicate_billing() {
        let cost = CostModel::default();
        let p = physical("SELECT url FROM t1 WHERE clicks > 5 ORDER BY url LIMIT 3");
        // Walk out the nodes we need.
        let PhysicalPlan::Limit { input: proj, .. } = &p else {
            panic!("{p:?}")
        };
        let PhysicalPlan::Project { input: sort, .. } = proj.as_ref() else {
            panic!("{proj:?}")
        };
        assert_eq!(
            proj.master_cpu_cost(&cost, &[100]),
            cost.predicate_eval(100)
        );
        assert_eq!(proj.master_cpu_cost(&cost, &[0]), cost.predicate_eval(1));
        // Sort bills n·⌈log₂ n⌉ comparisons with a floor of two rows.
        let n: usize = 100;
        let cmps = n * (usize::BITS - n.leading_zeros()) as usize;
        assert_eq!(sort.master_cpu_cost(&cost, &[n]), cost.predicate_eval(cmps));
        assert_eq!(
            p.master_cpu_cost(&cost, &[5]),
            SimDuration::ZERO,
            "limit is free"
        );

        let join = physical("SELECT t1.url FROM t1 JOIN t2 ON t1.url = t2.url");
        let PhysicalPlan::Project { input: join, .. } = &join else {
            panic!("{join:?}")
        };
        assert_eq!(
            join.master_cpu_cost(&cost, &[30, 20]),
            cost.predicate_eval(50),
            "join build+probe equals the legacy l+r billing at default rates"
        );
        assert_eq!(
            join.master_cpu_cost(&cost, &[0, 0]),
            cost.predicate_eval(1),
            "empty join still charges one row"
        );
    }

    #[test]
    fn unknown_table_fails_lowering() {
        let q = parse_query("SELECT url FROM t1").unwrap();
        let cat = catalog();
        let r = analyze(&q, &cat).unwrap();
        let plan = optimize(build_plan(&r).unwrap()).unwrap();
        let empty: HashMap<String, Schema> = HashMap::new();
        assert!(lower(&plan, &empty).is_err());
    }
}
