//! Cost-based join-order selection at lowering time.
//!
//! The logical optimizer keeps joins in syntactic order; this module
//! picks the execution order. Every maximal region of inner/cross joins
//! is flattened into its base relations and join conditions, cardinality
//! estimates are derived from the catalog's [`TableStats`] (row counts,
//! per-column NDV, predicate selectivities), and a left-deep order is
//! searched — exhaustively by dynamic programming up to
//! [`LowerOptions::dp_limit`] relations, greedily above. Costs are billed
//! through the same [`CostModel`] the engine charges at execution time
//! (`join_build` on the accumulated left side, `join_probe` on the new
//! right side), so the search optimizes exactly what the simulator
//! measures. The syntactic order is kept on ties, which makes the whole
//! pass a no-op for two-relation joins under the default (symmetric)
//! CPU rates — and fully deterministic everywhere.
//!
//! [`TableStats`]: feisu_sql::stats::TableStats

use crate::physical::{lower, PhysicalPlan};
use feisu_cluster::CostModel;
use feisu_common::{Result, SimDuration};
use feisu_sql::analyze::Catalog;
use feisu_sql::ast::{BinaryOp, Expr, JoinKind};
use feisu_sql::exprutil::{combine_conjuncts, equi_across};
use feisu_sql::plan::LogicalPlan;
use feisu_sql::stats::DEFAULT_SELECTIVITY;

/// Row count assumed for a table the catalog has no statistics for.
const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Knobs for [`lower_with`].
pub struct LowerOptions<'a> {
    /// Cost model the join-order search bills against.
    pub cost: &'a CostModel,
    /// Master switch for cost-based join reordering.
    pub join_reorder: bool,
    /// Regions up to this many relations are ordered by exhaustive
    /// left-deep DP; larger regions fall back to a greedy heuristic.
    pub dp_limit: usize,
}

/// What one join-order search decided, for EXPLAIN and the plan span.
#[derive(Debug, Clone)]
pub struct JoinOrderTrace {
    /// `"dp"` or `"greedy"`.
    pub method: &'static str,
    /// Relation labels in syntactic order.
    pub syntactic: Vec<String>,
    /// Relation labels in the order actually lowered.
    pub chosen: Vec<String>,
    pub syntactic_cost: SimDuration,
    pub chosen_cost: SimDuration,
    /// False when the search kept the syntactic order (tie or win).
    pub reordered: bool,
}

/// Side output of [`lower_with`].
#[derive(Debug, Clone, Default)]
pub struct LowerTrace {
    /// One entry per join region of three or more relations.
    pub join_orders: Vec<JoinOrderTrace>,
}

/// Lowers a logical plan, first reordering inner-join regions cost-based
/// when `opts.join_reorder` is set. Returns the physical plan plus the
/// join-order decisions made along the way.
pub fn lower_with(
    plan: &LogicalPlan,
    catalog: &dyn Catalog,
    opts: &LowerOptions<'_>,
) -> Result<(PhysicalPlan, LowerTrace)> {
    let mut trace = LowerTrace::default();
    if opts.join_reorder {
        let reordered = reorder_joins(plan.clone(), catalog, opts, &mut trace.join_orders);
        Ok((lower(&reordered, catalog)?, trace))
    } else {
        Ok((lower(plan, catalog)?, trace))
    }
}

/// Rewrites every inner/cross join region of the plan into its chosen
/// left-deep order, recording one [`JoinOrderTrace`] per searched region.
pub fn reorder_joins(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    opts: &LowerOptions<'_>,
    traces: &mut Vec<JoinOrderTrace>,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { ref kind, .. } if matches!(kind, JoinKind::Inner | JoinKind::Cross) => {
            reorder_region(plan, catalog, opts, traces)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let left = reorder_joins(*left, catalog, opts, traces);
            let right = reorder_joins(*right, catalog, opts, traces);
            // Children may have changed column order: keep the positional
            // output-schema invariant (left ++ right).
            let output_schema = left.schema().join(&right.schema());
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                output_schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(reorder_joins(*input, catalog, opts, traces)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(reorder_joins(*input, catalog, opts, traces)),
            exprs,
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(reorder_joins(*input, catalog, opts, traces)),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(reorder_joins(*input, catalog, opts, traces)),
            keys,
            fetch,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(reorder_joins(*input, catalog, opts, traces)),
            fetch,
        },
        leaf => leaf,
    }
}

/// One base relation of a flattened join region.
struct Rel {
    plan: LogicalPlan,
    card: f64,
}

/// One join condition of a flattened region.
struct CondInfo {
    expr: Expr,
    /// Bitmask of the relations the condition references.
    mask: usize,
    /// Cardinality factor applied when the condition first becomes
    /// evaluable: `1 / max(ndv_l, ndv_r)` for cross-relation equalities,
    /// [`DEFAULT_SELECTIVITY`] otherwise.
    factor: f64,
}

fn reorder_region(
    plan: LogicalPlan,
    catalog: &dyn Catalog,
    opts: &LowerOptions<'_>,
    traces: &mut Vec<JoinOrderTrace>,
) -> LogicalPlan {
    // Flatten the maximal inner/cross region into leaves + conditions,
    // recursing into the leaves (they may contain further regions).
    let mut leaves = Vec::new();
    let mut cond_exprs = Vec::new();
    flatten(plan, &mut leaves, &mut cond_exprs);
    let rels: Vec<Rel> = leaves
        .into_iter()
        .map(|l| {
            let l = reorder_joins(l, catalog, opts, traces);
            let card = base_card(&l, catalog);
            Rel { plan: l, card }
        })
        .collect();
    let n = rels.len();
    let conds: Vec<CondInfo> = cond_exprs
        .into_iter()
        .map(|e| cond_info(e, &rels, catalog))
        .collect();

    // Two relations cost the same either way under build+probe billing
    // (the engine bills both sides); keep the syntactic order.
    let syntactic: Vec<usize> = (0..n).collect();
    if n <= 2 {
        return rebuild(&rels, &conds, &syntactic);
    }

    let (syn_cost, _) = order_cost(&syntactic, &rels, &conds, opts.cost);
    let (method, chosen, chosen_cost) = if n <= opts.dp_limit {
        let (o, c) = dp_order(&rels, &conds, opts.cost);
        ("dp", o, c)
    } else {
        let (o, c) = greedy_order(&rels, &conds, opts.cost);
        ("greedy", o, c)
    };
    // Only deviate from the syntactic order for a strict win (epsilon in
    // nanoseconds); ties keep plans stable across platforms.
    let reordered = chosen != syntactic && chosen_cost + 1e-6 < syn_cost;
    let order = if reordered { &chosen } else { &syntactic };
    traces.push(JoinOrderTrace {
        method,
        syntactic: syntactic.iter().map(|&i| label(&rels[i].plan)).collect(),
        chosen: order.iter().map(|&i| label(&rels[i].plan)).collect(),
        syntactic_cost: SimDuration::nanos(syn_cost as u64),
        chosen_cost: SimDuration::nanos(if reordered { chosen_cost } else { syn_cost } as u64),
        reordered,
    });
    rebuild(&rels, &conds, order)
}

fn flatten(plan: LogicalPlan, leaves: &mut Vec<LogicalPlan>, conds: &mut Vec<Expr>) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner | JoinKind::Cross,
            on,
            ..
        } => {
            flatten(*left, leaves, conds);
            flatten(*right, leaves, conds);
            conds.extend(on);
        }
        other => leaves.push(other),
    }
}

/// Estimated output rows of a region leaf.
fn base_card(plan: &LogicalPlan, catalog: &dyn Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan {
            table, predicate, ..
        } => match catalog.table_stats(table) {
            Some(stats) => {
                let rows = stats.rows.max(1) as f64;
                match predicate {
                    Some(p) => (rows * stats.selectivity(p)).max(1.0),
                    None => rows,
                }
            }
            None => DEFAULT_TABLE_ROWS,
        },
        LogicalPlan::Filter { input, .. } => {
            (base_card(input, catalog) * DEFAULT_SELECTIVITY).max(1.0)
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            base_card(input, catalog)
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                (base_card(input, catalog) * DEFAULT_SELECTIVITY).max(1.0)
            }
        }
        LogicalPlan::Limit { input, fetch } => base_card(input, catalog).min(*fetch as f64),
        LogicalPlan::Join { left, right, .. } => {
            base_card(left, catalog).max(base_card(right, catalog))
        }
        LogicalPlan::Empty { .. } => 0.0,
    }
}

/// The relation (by index) whose schema resolves `col`, if any.
fn owner(rels: &[Rel], col: &str) -> Option<usize> {
    rels.iter()
        .position(|r| r.plan.schema().index_of(col).is_some())
}

/// NDV of one column of one relation: catalog stats when the relation
/// bottoms out in a scan, else its cardinality (key-like assumption).
fn col_ndv(rel: &Rel, col: &str, catalog: &dyn Catalog) -> f64 {
    let mut node = &rel.plan;
    loop {
        match node {
            LogicalPlan::Scan { table, .. } => {
                if let Some(stats) = catalog.table_stats(table) {
                    return stats.column_ndv(col) as f64;
                }
                return rel.card.max(1.0);
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => node = input,
            _ => return rel.card.max(1.0),
        }
    }
}

fn cond_info(expr: Expr, rels: &[Rel], catalog: &dyn Catalog) -> CondInfo {
    let mut cols = Vec::new();
    expr.columns(&mut cols);
    let mut mask = 0usize;
    for c in &cols {
        if let Some(r) = owner(rels, c) {
            mask |= 1 << r;
        }
    }
    let factor = match &expr {
        Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } => {
            let mut lc = Vec::new();
            let mut rc = Vec::new();
            left.columns(&mut lc);
            right.columns(&mut rc);
            let side_ndv = |cols: &[String]| -> Option<f64> {
                let first = cols.first()?;
                let o = owner(rels, first)?;
                if !cols.iter().all(|c| owner(rels, c) == Some(o)) {
                    return None;
                }
                Some(
                    cols.iter()
                        .map(|c| col_ndv(&rels[o], c, catalog))
                        .fold(1.0, f64::max),
                )
            };
            match (side_ndv(&lc), side_ndv(&rc)) {
                (Some(l), Some(r)) if mask.count_ones() == 2 => 1.0 / l.max(r).max(1.0),
                _ => DEFAULT_SELECTIVITY,
            }
        }
        _ => DEFAULT_SELECTIVITY,
    };
    CondInfo { expr, mask, factor }
}

/// Cardinality and step cost of joining the accumulated left side (rows
/// `acc_card`, relations `acc_mask`) with relation `j`: the engine builds
/// a hash table over the left rows and probes with the right rows, and
/// every condition that first becomes evaluable scales the output.
fn join_step(
    acc_card: f64,
    acc_mask: usize,
    j: usize,
    rels: &[Rel],
    conds: &[CondInfo],
    cost: &CostModel,
) -> (f64, f64) {
    let new_mask = acc_mask | (1 << j);
    let mut card = acc_card * rels[j].card;
    for c in conds {
        if c.mask & new_mask == c.mask && c.mask & !acc_mask != 0 {
            card *= c.factor;
        }
    }
    let card = card.max(1.0);
    let step =
        acc_card * cost.cpu_ns_per_join_build_row + rels[j].card * cost.cpu_ns_per_join_probe_row;
    (card, step)
}

/// Total cost (ns) of executing `order` left-deep, and the final card.
fn order_cost(order: &[usize], rels: &[Rel], conds: &[CondInfo], cost: &CostModel) -> (f64, f64) {
    let mut mask = 1usize << order[0];
    let mut card = rels[order[0]].card;
    let mut total = 0.0;
    for &j in &order[1..] {
        let (c, step) = join_step(card, mask, j, rels, conds, cost);
        total += step;
        card = c;
        mask |= 1 << j;
    }
    (total, card)
}

#[derive(Clone)]
struct DpEntry {
    cost: f64,
    card: f64,
    order: Vec<usize>,
}

/// Exhaustive left-deep join-order search over all relation subsets.
fn dp_order(rels: &[Rel], conds: &[CondInfo], cost: &CostModel) -> (Vec<usize>, f64) {
    let n = rels.len();
    let full = (1usize << n) - 1;
    let mut dp: Vec<Option<DpEntry>> = vec![None; 1 << n];
    for (i, r) in rels.iter().enumerate() {
        dp[1 << i] = Some(DpEntry {
            cost: 0.0,
            card: r.card,
            order: vec![i],
        });
    }
    for mask in 1..=full {
        let Some(cur) = dp[mask].clone() else {
            continue;
        };
        for j in 0..n {
            if mask & (1 << j) != 0 {
                continue;
            }
            let (card, step) = join_step(cur.card, mask, j, rels, conds, cost);
            let cand = cur.cost + step;
            let slot = &mut dp[mask | (1 << j)];
            // Strict `<` keeps the first (lowest-index) order on ties, so
            // the search is deterministic.
            if slot.as_ref().is_none_or(|e| cand < e.cost) {
                let mut order = cur.order.clone();
                order.push(j);
                *slot = Some(DpEntry {
                    cost: cand,
                    card,
                    order,
                });
            }
        }
    }
    let best = dp[full].take().expect("full mask reachable");
    (best.order, best.cost)
}

/// Greedy order for regions past the DP limit: start from the smallest
/// relation, repeatedly append the relation minimizing the intermediate
/// cardinality (ties to the lowest index).
fn greedy_order(rels: &[Rel], conds: &[CondInfo], cost: &CostModel) -> (Vec<usize>, f64) {
    let n = rels.len();
    let start = (0..n)
        .min_by(|&a, &b| rels[a].card.total_cmp(&rels[b].card))
        .expect("nonempty region");
    let mut order = vec![start];
    let mut mask = 1usize << start;
    let mut card = rels[start].card;
    let mut total = 0.0;
    while order.len() < n {
        let mut best: Option<(f64, f64, usize)> = None;
        for j in 0..n {
            if mask & (1 << j) != 0 {
                continue;
            }
            let (c, step) = join_step(card, mask, j, rels, conds, cost);
            if best.as_ref().is_none_or(|&(bc, _, _)| c < bc) {
                best = Some((c, step, j));
            }
        }
        let (c, step, j) = best.expect("relation remaining");
        order.push(j);
        mask |= 1 << j;
        card = c;
        total += step;
    }
    (order, total)
}

/// Reassembles the region as a left-deep tree in `order`, attaching each
/// condition at the first join where all its relations are present. A
/// step with at least one cross-relation equality becomes an inner hash
/// join (single-side and non-equi conditions ride along as residuals);
/// a step with none becomes a cross join with any conditions as a filter
/// above it.
fn rebuild(rels: &[Rel], conds: &[CondInfo], order: &[usize]) -> LogicalPlan {
    let mut used = vec![false; conds.len()];
    let mut acc = rels[order[0]].plan.clone();
    let mut acc_mask = 1usize << order[0];
    for &j in &order[1..] {
        let new_mask = acc_mask | (1 << j);
        let mut step_conds = Vec::new();
        for (ci, c) in conds.iter().enumerate() {
            if !used[ci] && c.mask & new_mask == c.mask {
                used[ci] = true;
                step_conds.push(c.expr.clone());
            }
        }
        let right = rels[j].plan.clone();
        let output_schema = acc.schema().join(&right.schema());
        let has_equi = step_conds
            .iter()
            .any(|c| equi_across(c, &acc.schema(), &right.schema()));
        acc = if has_equi {
            LogicalPlan::Join {
                left: Box::new(acc),
                right: Box::new(right),
                kind: JoinKind::Inner,
                on: step_conds,
                output_schema,
            }
        } else {
            let cross = LogicalPlan::Join {
                left: Box::new(acc),
                right: Box::new(right),
                kind: JoinKind::Cross,
                on: Vec::new(),
                output_schema,
            };
            match combine_conjuncts(step_conds) {
                Some(pred) => LogicalPlan::Filter {
                    input: Box::new(cross),
                    predicate: pred,
                },
                None => cross,
            }
        };
        acc_mask = new_mask;
    }
    // Conditions that never became attachable (no columns at all, or
    // columns the region does not resolve) stay as a filter on top.
    let leftovers: Vec<Expr> = conds
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(c, _)| c.expr.clone())
        .collect();
    match combine_conjuncts(leftovers) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(acc),
            predicate: pred,
        },
        None => acc,
    }
}

/// Human-readable relation label for traces: the scan binding when the
/// leaf bottoms out in one, else a placeholder.
fn label(plan: &LogicalPlan) -> String {
    let mut node = plan;
    loop {
        match node {
            LogicalPlan::Scan { binding, .. } => return binding.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Aggregate { input, .. } => node = input,
            _ => return "<subplan>".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_common::hash::FxHashMap;
    use feisu_format::{DataType, Field, Schema};
    use feisu_sql::analyze::analyze;
    use feisu_sql::optimizer::optimize;
    use feisu_sql::parser::parse_query;
    use feisu_sql::plan::build_plan;
    use feisu_sql::stats::{ColumnStats, TableStats};
    use std::collections::HashMap;

    /// Catalog with statistics: a small `d1`, a small `d2`, a big fact
    /// table `f` keyed into both.
    struct StatsCatalog {
        schemas: HashMap<String, Schema>,
        stats: HashMap<String, TableStats>,
    }

    impl Catalog for StatsCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            self.schemas.get(name).cloned()
        }
        fn table_stats(&self, name: &str) -> Option<TableStats> {
            self.stats.get(name).cloned()
        }
    }

    fn star_catalog() -> StatsCatalog {
        let mut schemas = HashMap::new();
        schemas.insert(
            "d1".to_string(),
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("name", DataType::Utf8, false),
            ]),
        );
        schemas.insert(
            "d2".to_string(),
            Schema::new(vec![
                Field::new("k", DataType::Int64, false),
                Field::new("name", DataType::Utf8, false),
            ]),
        );
        schemas.insert(
            "f".to_string(),
            Schema::new(vec![
                Field::new("k1", DataType::Int64, false),
                Field::new("k2", DataType::Int64, false),
                Field::new("v", DataType::Int64, false),
            ]),
        );
        let dim = |rows: u64| {
            let mut columns = FxHashMap::default();
            columns.insert(
                "k".to_string(),
                ColumnStats {
                    ndv: rows,
                    ..ColumnStats::default()
                },
            );
            TableStats { rows, columns }
        };
        let mut fact_cols = FxHashMap::default();
        for c in ["k1", "k2"] {
            fact_cols.insert(
                c.to_string(),
                ColumnStats {
                    ndv: 2000,
                    ..ColumnStats::default()
                },
            );
        }
        let mut stats = HashMap::new();
        stats.insert("d1".to_string(), dim(2000));
        stats.insert("d2".to_string(), dim(2000));
        stats.insert(
            "f".to_string(),
            TableStats {
                rows: 100_000,
                columns: fact_cols,
            },
        );
        StatsCatalog { schemas, stats }
    }

    fn planned(sql: &str, cat: &StatsCatalog) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        let r = analyze(&q, cat).unwrap();
        optimize(build_plan(&r).unwrap()).unwrap()
    }

    const STAR: &str = "SELECT SUM(f.v) AS s FROM d1, d2, f \
                        WHERE f.k1 = d1.k AND f.k2 = d2.k";

    #[test]
    fn star_join_reordered_away_from_cross_product() {
        let cat = star_catalog();
        let plan = planned(STAR, &cat);
        let cost = CostModel::default();
        let opts = LowerOptions {
            cost: &cost,
            join_reorder: true,
            dp_limit: 6,
        };
        let (physical, trace) = lower_with(&plan, &cat, &opts).unwrap();
        assert_eq!(trace.join_orders.len(), 1);
        let t = &trace.join_orders[0];
        assert_eq!(t.method, "dp");
        assert!(t.reordered, "{t:?}");
        assert_eq!(t.syntactic, vec!["d1", "d2", "f"]);
        // The chosen order joins the fact table before the cross product
        // of the two dimensions can form.
        assert_ne!(t.chosen[1], "d2", "chosen {:?}", t.chosen);
        assert!(t.chosen_cost < t.syntactic_cost, "{t:?}");
        // Both joins lowered as inner hash joins, no cross product left.
        let s = physical.display_indent();
        assert_eq!(s.matches("HashJoin: Inner").count(), 2, "{s}");
        assert!(!s.contains("Cross"), "{s}");
    }

    #[test]
    fn reorder_disabled_keeps_syntactic_order() {
        let cat = star_catalog();
        let plan = planned(STAR, &cat);
        let cost = CostModel::default();
        let opts = LowerOptions {
            cost: &cost,
            join_reorder: false,
            dp_limit: 6,
        };
        let (physical, trace) = lower_with(&plan, &cat, &opts).unwrap();
        assert!(trace.join_orders.is_empty());
        // Syntactic shape: (d1 ⋈ d2) ⋈ f — the d1/d2 join has no usable
        // key, so it stays a cross join.
        let s = physical.display_indent();
        assert!(s.contains("Cross"), "{s}");
    }

    #[test]
    fn two_relation_join_keeps_syntactic_order() {
        let cat = star_catalog();
        let plan = planned("SELECT d1.name FROM d1, f WHERE f.k1 = d1.k", &cat);
        let cost = CostModel::default();
        let opts = LowerOptions {
            cost: &cost,
            join_reorder: true,
            dp_limit: 6,
        };
        let (physical, trace) = lower_with(&plan, &cat, &opts).unwrap();
        // Two-relation regions are never searched (cost is symmetric).
        assert!(trace.join_orders.is_empty());
        let s = physical.display_indent();
        let d1_at = s.find("DistributedScan: d1").expect(&s);
        let f_at = s.find("DistributedScan: f").expect(&s);
        assert!(d1_at < f_at, "{s}");
    }

    #[test]
    fn greedy_used_past_dp_limit() {
        let cat = star_catalog();
        let plan = planned(STAR, &cat);
        let cost = CostModel::default();
        let opts = LowerOptions {
            cost: &cost,
            join_reorder: true,
            dp_limit: 2,
        };
        let (_, trace) = lower_with(&plan, &cat, &opts).unwrap();
        assert_eq!(trace.join_orders.len(), 1);
        let t = &trace.join_orders[0];
        assert_eq!(t.method, "greedy");
        assert!(t.reordered, "{t:?}");
    }

    #[test]
    fn no_stats_three_way_ties_to_syntactic() {
        // Without statistics all cards default equal, so the DP result
        // ties and the syntactic order must win.
        let mut schemas: HashMap<String, Schema> = HashMap::new();
        for t in ["a", "b", "c"] {
            schemas.insert(
                t.to_string(),
                Schema::new(vec![Field::new("k", DataType::Int64, false)]),
            );
        }
        let cat = StatsCatalog {
            schemas,
            stats: HashMap::new(),
        };
        let plan = planned(
            "SELECT a.k FROM a, b, c WHERE a.k = b.k AND b.k = c.k",
            &cat,
        );
        let cost = CostModel::default();
        let opts = LowerOptions {
            cost: &cost,
            join_reorder: true,
            dp_limit: 6,
        };
        let (_, trace) = lower_with(&plan, &cat, &opts).unwrap();
        assert_eq!(trace.join_orders.len(), 1);
        let t = &trace.join_orders[0];
        assert!(!t.reordered, "{t:?}");
        assert_eq!(t.chosen, t.syntactic);
    }
}
