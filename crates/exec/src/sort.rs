//! Multi-key sort with optional top-N (fetch).
//!
//! ORDER BY keys are arbitrary expressions; DESC flips the comparison.
//! When the optimizer pushed a LIMIT into the sort (`fetch`), a bounded
//! binary heap keeps memory and comparisons at O(n log k).

use crate::batch::{BatchRow, RecordBatch};
use feisu_common::Result;
use feisu_format::Value;
use feisu_sql::ast::Expr;
use feisu_sql::eval::eval;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sorts a batch by `keys`; `fetch` keeps only the first N rows.
pub fn sort(batch: &RecordBatch, keys: &[(Expr, bool)], fetch: Option<u64>) -> Result<RecordBatch> {
    // Materialize key values once per row.
    let mut key_rows: Vec<(Vec<Value>, usize)> = Vec::with_capacity(batch.rows());
    for i in 0..batch.rows() {
        let row = BatchRow { batch, row: i };
        let kv: Vec<Value> = keys
            .iter()
            .map(|(e, _)| eval(e, &row))
            .collect::<Result<_>>()?;
        key_rows.push((kv, i));
    }
    let descending: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    let cmp = |a: &(Vec<Value>, usize), b: &(Vec<Value>, usize)| -> Ordering {
        for ((x, y), desc) in a.0.iter().zip(b.0.iter()).zip(&descending) {
            let o = x.total_cmp(y);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        // Stable tie-break on original position.
        a.1.cmp(&b.1)
    };

    let indices: Vec<usize> = match fetch {
        Some(k) if (k as usize) < key_rows.len() => {
            // Max-heap of the current top-k (worst at the top).
            // Sort + truncate when k is large relative to n; bounded
            // heap otherwise.
            let k = k as usize;
            if k * 4 >= key_rows.len() {
                key_rows.sort_by(cmp);
                key_rows.truncate(k);
                key_rows.into_iter().map(|(_, i)| i).collect()
            } else {
                // Manual bounded selection: keep a Vec as a binary heap
                // ordered by `cmp` descending (worst first).
                let mut heap: BinaryHeap<OrdBy> = BinaryHeap::with_capacity(k + 1);
                for item in key_rows {
                    heap.push(OrdBy {
                        item,
                        desc_mask: descending.clone(),
                    });
                    if heap.len() > k {
                        heap.pop();
                    }
                }
                let mut top: Vec<(Vec<Value>, usize)> = heap.into_iter().map(|o| o.item).collect();
                top.sort_by(cmp);
                top.into_iter().map(|(_, i)| i).collect()
            }
        }
        _ => {
            key_rows.sort_by(cmp);
            let mut v: Vec<usize> = key_rows.into_iter().map(|(_, i)| i).collect();
            if let Some(k) = fetch {
                v.truncate(k as usize);
            }
            v
        }
    };
    batch.take(&indices)
}

/// Heap adapter: orders items so the heap's top is the *worst* row under
/// the sort order, making it a bounded top-k structure.
struct OrdBy {
    item: (Vec<Value>, usize),
    desc_mask: Vec<bool>,
}

impl OrdBy {
    fn order(&self, other: &Self) -> Ordering {
        for ((x, y), desc) in self
            .item
            .0
            .iter()
            .zip(other.item.0.iter())
            .zip(&self.desc_mask)
        {
            let o = x.total_cmp(y);
            let o = if *desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        self.item.1.cmp(&other.item.1)
    }
}

impl PartialEq for OrdBy {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for OrdBy {}
impl PartialOrd for OrdBy {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdBy {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{Column, DataType, Field, Schema};
    use feisu_sql::parser::parse_expr;

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("n", DataType::Int64, true),
            Field::new("s", DataType::Utf8, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(3),
                        Value::Int64(1),
                        Value::Null,
                        Value::Int64(2),
                        Value::Int64(1),
                    ],
                )
                .unwrap(),
                Column::from_utf8(vec![
                    "c".into(),
                    "b".into(),
                    "e".into(),
                    "d".into(),
                    "a".into(),
                ]),
            ],
        )
        .unwrap()
    }

    fn keys(src: &str, desc: bool) -> Vec<(Expr, bool)> {
        vec![(parse_expr(src).unwrap(), desc)]
    }

    #[test]
    fn ascending_nulls_first() {
        let out = sort(&batch(), &keys("n", false), None).unwrap();
        let ns: Vec<Value> = (0..5).map(|i| out.value_at(i, "n").unwrap()).collect();
        assert_eq!(
            ns,
            vec![
                Value::Null,
                Value::Int64(1),
                Value::Int64(1),
                Value::Int64(2),
                Value::Int64(3)
            ]
        );
    }

    #[test]
    fn descending() {
        let out = sort(&batch(), &keys("n", true), None).unwrap();
        assert_eq!(out.value_at(0, "n"), Some(Value::Int64(3)));
        assert_eq!(out.value_at(4, "n"), Some(Value::Null));
    }

    #[test]
    fn multi_key_tiebreak() {
        let ks = vec![
            (parse_expr("n").unwrap(), false),
            (parse_expr("s").unwrap(), false),
        ];
        let out = sort(&batch(), &ks, None).unwrap();
        // The two n=1 rows order by s: 'a' before 'b'.
        assert_eq!(out.value_at(1, "s"), Some(Value::Utf8("a".into())));
        assert_eq!(out.value_at(2, "s"), Some(Value::Utf8("b".into())));
    }

    #[test]
    fn stability_on_equal_keys() {
        let ks = vec![(parse_expr("1").unwrap(), false)]; // constant key
        let out = sort(&batch(), &ks, None).unwrap();
        assert_eq!(out, batch(), "equal keys keep original order");
    }

    #[test]
    fn fetch_truncates_and_matches_full_sort() {
        let full = sort(&batch(), &keys("n", true), None).unwrap();
        for k in [1u64, 2, 3, 10] {
            let top = sort(&batch(), &keys("n", true), Some(k)).unwrap();
            assert_eq!(top.rows(), (k as usize).min(5));
            for i in 0..top.rows() {
                assert_eq!(top.row(i), full.row(i), "k={k} row {i}");
            }
        }
    }

    #[test]
    fn heap_path_matches_sort_path_on_larger_input() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let vals: Vec<i64> = (0..1000)
            .map(|i| (i * 2654435761u64 as i64) % 997)
            .collect();
        let b = RecordBatch::new(schema, vec![Column::from_i64(vals)]).unwrap();
        let full = sort(&b, &keys("x", false), None).unwrap();
        let top = sort(&b, &keys("x", false), Some(10)).unwrap(); // heap path
        for i in 0..10 {
            assert_eq!(top.row(i), full.row(i));
        }
    }

    #[test]
    fn sort_expression_keys() {
        let out = sort(&batch(), &keys("n * -1", false), None).unwrap();
        // -3 < -2 < -1 = -1 < null? No: null expression results sort first.
        assert_eq!(out.value_at(0, "n"), Some(Value::Null));
        assert_eq!(out.value_at(1, "n"), Some(Value::Int64(3)));
    }
}
