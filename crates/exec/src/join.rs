//! Join operators: hash equi-join (inner / left / right outer) and
//! nested-loop cross join, with residual non-equi conditions.

use crate::batch::{BatchRow, RecordBatch};
use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, Result};
use feisu_format::{Column, ColumnBuilder, Schema, Value};
use feisu_sql::ast::{BinaryOp, Expr, JoinKind};
use feisu_sql::eval::{eval, eval_truth};

/// One equi-join condition split by side.
struct EquiPair {
    left: Expr,
    right: Expr,
}

/// Splits ON conditions into equi pairs (hashable) and residual
/// conditions (evaluated on candidate pairs).
fn split_conditions(
    on: &[Expr],
    left_schema: &Schema,
    right_schema: &Schema,
) -> (Vec<EquiPair>, Vec<Expr>) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for cond in on {
        if let Expr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = cond
        {
            let l_side = side_of(left, left_schema, right_schema);
            let r_side = side_of(right, left_schema, right_schema);
            match (l_side, r_side) {
                (Some(true), Some(false)) => {
                    pairs.push(EquiPair {
                        left: (**left).clone(),
                        right: (**right).clone(),
                    });
                    continue;
                }
                (Some(false), Some(true)) => {
                    pairs.push(EquiPair {
                        left: (**right).clone(),
                        right: (**left).clone(),
                    });
                    continue;
                }
                _ => {}
            }
        }
        residual.push(cond.clone());
    }
    (pairs, residual)
}

/// `Some(true)` = references only left columns, `Some(false)` = only
/// right, `None` = mixed/none.
fn side_of(e: &Expr, left: &Schema, right: &Schema) -> Option<bool> {
    let mut cols = Vec::new();
    e.columns(&mut cols);
    if cols.is_empty() {
        return None;
    }
    if cols.iter().all(|c| left.index_of(c).is_some()) {
        Some(true)
    } else if cols.iter().all(|c| right.index_of(c).is_some()) {
        Some(false)
    } else {
        None
    }
}

/// Executes a join; both inputs are fully materialized (Feisu's dimension
/// tables in star queries are small by construction).
pub fn join(
    left: &RecordBatch,
    right: &RecordBatch,
    kind: JoinKind,
    on: &[Expr],
    output_schema: &Schema,
) -> Result<RecordBatch> {
    match kind {
        JoinKind::Cross => {
            if !on.is_empty() {
                return Err(FeisuError::Execution("CROSS JOIN takes no ON".into()));
            }
            cross_join(left, right, output_schema)
        }
        _ => hash_join(left, right, kind, on, output_schema),
    }
}

fn cross_join(
    left: &RecordBatch,
    right: &RecordBatch,
    output_schema: &Schema,
) -> Result<RecordBatch> {
    let mut left_idx = Vec::with_capacity(left.rows() * right.rows());
    let mut right_idx = Vec::with_capacity(left.rows() * right.rows());
    for l in 0..left.rows() {
        for r in 0..right.rows() {
            left_idx.push(l);
            right_idx.push(r);
        }
    }
    assemble(left, right, &left_idx, &right_idx, &[], &[], output_schema)
}

fn hash_join(
    left: &RecordBatch,
    right: &RecordBatch,
    kind: JoinKind,
    on: &[Expr],
    output_schema: &Schema,
) -> Result<RecordBatch> {
    let (pairs, residual) = split_conditions(on, left.schema(), right.schema());
    if pairs.is_empty() {
        return Err(FeisuError::Execution(
            "join requires at least one equi condition (use CROSS JOIN otherwise)".into(),
        ));
    }
    // Build side: hash the right input on its key exprs.
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for r in 0..right.rows() {
        let row = BatchRow {
            batch: right,
            row: r,
        };
        let key: Vec<Value> = pairs
            .iter()
            .map(|p| eval(&p.right, &row))
            .collect::<Result<_>>()?;
        // SQL join semantics: null keys never match.
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        table.entry(key).or_default().push(r);
    }
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    let mut left_unmatched: Vec<usize> = Vec::new();
    let mut right_matched = vec![false; right.rows()];
    for l in 0..left.rows() {
        let row = BatchRow {
            batch: left,
            row: l,
        };
        let key: Vec<Value> = pairs
            .iter()
            .map(|p| eval(&p.left, &row))
            .collect::<Result<_>>()?;
        let mut matched = false;
        if !key.iter().any(|v| v.is_null()) {
            if let Some(candidates) = table.get(&key) {
                for &r in candidates {
                    if residual_passes(&residual, left, l, right, r)? {
                        left_idx.push(l);
                        right_idx.push(r);
                        right_matched[r] = true;
                        matched = true;
                    }
                }
            }
        }
        if !matched {
            left_unmatched.push(l);
        }
    }
    let (null_left, null_right): (Vec<usize>, Vec<usize>) = match kind {
        JoinKind::Inner => (Vec::new(), Vec::new()),
        JoinKind::LeftOuter => (left_unmatched, Vec::new()),
        JoinKind::RightOuter => (
            Vec::new(),
            right_matched
                .iter()
                .enumerate()
                .filter(|(_, m)| !**m)
                .map(|(i, _)| i)
                .collect(),
        ),
        JoinKind::Cross => unreachable!(),
    };
    assemble(
        left,
        right,
        &left_idx,
        &right_idx,
        &null_left,
        &null_right,
        output_schema,
    )
}

/// Evaluates residual conditions against one candidate row pair. Column
/// lookups try the left row first, then the right (schemas are
/// qualified, so names are disjoint).
fn residual_passes(
    residual: &[Expr],
    left: &RecordBatch,
    l: usize,
    right: &RecordBatch,
    r: usize,
) -> Result<bool> {
    if residual.is_empty() {
        return Ok(true);
    }
    let ctx = |name: &str| -> Option<Value> {
        left.value_at(l, name).or_else(|| right.value_at(r, name))
    };
    for cond in residual {
        if !eval_truth(cond, &ctx)?.passes() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Builds the output batch from matched index pairs plus null-extended
/// unmatched rows.
#[allow(clippy::too_many_arguments)]
fn assemble(
    left: &RecordBatch,
    right: &RecordBatch,
    left_idx: &[usize],
    right_idx: &[usize],
    null_left: &[usize],  // left rows with null right side
    null_right: &[usize], // right rows with null left side
    output_schema: &Schema,
) -> Result<RecordBatch> {
    let lcols = left.schema().len();
    let mut builders: Vec<ColumnBuilder> = output_schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    let mut push_row = |lrow: Option<usize>, rrow: Option<usize>| {
        for (c, b) in builders.iter_mut().enumerate() {
            let v = if c < lcols {
                lrow.map_or(Value::Null, |i| left.column(c).value(i))
            } else {
                rrow.map_or(Value::Null, |i| right.column(c - lcols).value(i))
            };
            b.push(v);
        }
    };
    for (&l, &r) in left_idx.iter().zip(right_idx) {
        push_row(Some(l), Some(r));
    }
    for &l in null_left {
        push_row(Some(l), None);
    }
    for &r in null_right {
        push_row(None, Some(r));
    }
    let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
    RecordBatch::new(output_schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{DataType, Field};
    use feisu_sql::parser::parse_expr;

    fn left() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("t1.k", DataType::Int64, true),
            Field::new("t1.v", DataType::Utf8, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(1),
                        Value::Int64(2),
                        Value::Null,
                        Value::Int64(4),
                    ],
                )
                .unwrap(),
                Column::from_utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ],
        )
        .unwrap()
    }

    fn right() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("t2.k", DataType::Int64, true),
            Field::new("t2.w", DataType::Int64, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(1),
                        Value::Int64(1),
                        Value::Int64(3),
                        Value::Null,
                    ],
                )
                .unwrap(),
                Column::from_i64(vec![10, 11, 30, 99]),
            ],
        )
        .unwrap()
    }

    fn out_schema() -> Schema {
        left().schema().join(right().schema())
    }

    fn on() -> Vec<Expr> {
        vec![parse_expr("t1.k = t2.k").unwrap()]
    }

    #[test]
    fn inner_join_matches() {
        let out = join(&left(), &right(), JoinKind::Inner, &on(), &out_schema()).unwrap();
        // k=1 matches two right rows; k=2,4 no match; null never matches.
        assert_eq!(out.rows(), 2);
        let ws: Vec<Value> = (0..2).map(|i| out.value_at(i, "t2.w").unwrap()).collect();
        assert!(ws.contains(&Value::Int64(10)) && ws.contains(&Value::Int64(11)));
    }

    #[test]
    fn left_outer_extends_unmatched() {
        let out = join(&left(), &right(), JoinKind::LeftOuter, &on(), &out_schema()).unwrap();
        // 2 matches + 3 unmatched left rows (k=2, null, k=4).
        assert_eq!(out.rows(), 5);
        let null_count = (0..out.rows())
            .filter(|&i| out.value_at(i, "t2.w") == Some(Value::Null))
            .count();
        assert_eq!(null_count, 3);
    }

    #[test]
    fn right_outer_extends_unmatched() {
        let out = join(
            &left(),
            &right(),
            JoinKind::RightOuter,
            &on(),
            &out_schema(),
        )
        .unwrap();
        // 2 matches + 2 unmatched right rows (k=3, null).
        assert_eq!(out.rows(), 4);
        let null_count = (0..out.rows())
            .filter(|&i| out.value_at(i, "t1.v") == Some(Value::Null))
            .count();
        assert_eq!(null_count, 2);
    }

    #[test]
    fn residual_condition_filters_pairs() {
        let on = vec![
            parse_expr("t1.k = t2.k").unwrap(),
            parse_expr("t2.w > 10").unwrap(),
        ];
        let out = join(&left(), &right(), JoinKind::Inner, &on, &out_schema()).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value_at(0, "t2.w"), Some(Value::Int64(11)));
    }

    #[test]
    fn cross_join_product() {
        let out = join(&left(), &right(), JoinKind::Cross, &[], &out_schema()).unwrap();
        assert_eq!(out.rows(), 16);
    }

    #[test]
    fn non_equi_only_join_rejected() {
        let on = vec![parse_expr("t1.k > t2.k").unwrap()];
        assert!(join(&left(), &right(), JoinKind::Inner, &on, &out_schema()).is_err());
    }

    #[test]
    fn empty_inputs() {
        let l = RecordBatch::empty(left().schema().clone());
        let out = join(&l, &right(), JoinKind::Inner, &on(), &out_schema()).unwrap();
        assert_eq!(out.rows(), 0);
        let out = join(&l, &right(), JoinKind::RightOuter, &on(), &out_schema()).unwrap();
        assert_eq!(out.rows(), 4, "all right rows null-extended");
    }
}
