//! Feisu's query execution engine.
//!
//! Physical operators over columnar [`batch::RecordBatch`]es:
//!
//! * [`expr`] — expression evaluation against batches, with typed fast
//!   paths for the comparison predicates that dominate the workload;
//! * [`ops`] — filter / project / limit and bitmap-selected scans;
//! * [`aggregate`] — hash aggregation with *mergeable partial states*,
//!   the mechanism leaf servers use to pre-aggregate and stem servers to
//!   combine ("results are summarized in a bottom-up way", §III-B);
//! * [`join`] — hash equi-joins (inner/left/right) and cross join;
//! * [`sort`] — multi-key sort with top-N (fetch) support;
//! * [`executor`] — drives a `feisu-sql` logical plan over a pluggable
//!   [`executor::ScanProvider`], used both by the distributed engine in
//!   `feisu-core` and standalone by tests (with [`executor::MemProvider`]
//!   as the in-memory oracle backend).

pub mod aggregate;
pub mod batch;
pub mod executor;
pub mod expr;
pub mod join;
pub mod ops;
pub mod physical;
pub mod reorder;
pub mod sort;

pub use batch::RecordBatch;
pub use executor::{execute, MemProvider, ScanProvider};
