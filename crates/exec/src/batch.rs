//! Record batches: the unit of data flowing between operators.

use feisu_common::{FeisuError, Result};
use feisu_format::{Column, Schema, Value};
use feisu_index::BitVec;

/// A schema plus equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl RecordBatch {
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<RecordBatch> {
        if schema.len() != columns.len() {
            return Err(FeisuError::Execution(format!(
                "batch has {} columns for {} fields",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.len() != rows {
                return Err(FeisuError::Execution("ragged batch columns".into()));
            }
            if c.data_type() != f.data_type {
                return Err(FeisuError::Execution(format!(
                    "column `{}` is {} but schema says {}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// A zero-row batch with the given schema.
    pub fn empty(schema: Schema) -> RecordBatch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::from_values(f.data_type, &[]).expect("empty column"))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Dynamic view of one row.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Value at (row, column name); `None` if the column is unknown.
    pub fn value_at(&self, row: usize, column: &str) -> Option<Value> {
        self.column_by_name(column).map(|c| c.value(row))
    }

    /// Keeps the rows whose bit is set, gathering straight from the
    /// selection words without materializing an index vector.
    pub fn select(&self, bits: &BitVec) -> Result<RecordBatch> {
        if bits.len() != self.rows {
            return Err(FeisuError::Execution(format!(
                "selection vector has {} bits for {} rows",
                bits.len(),
                self.rows
            )));
        }
        let columns: Vec<Column> = self
            .columns
            .iter()
            .map(|c| c.filter_by_words(bits.words()))
            .collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Gathers rows by index.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Concatenates batches with identical schemas.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let Some(first) = batches.first() else {
            return Err(FeisuError::Execution("concat of zero batches".into()));
        };
        let mut columns = first.columns.clone();
        for b in &batches[1..] {
            if b.schema != first.schema {
                return Err(FeisuError::Execution("concat schema mismatch".into()));
            }
            for (dst, src) in columns.iter_mut().zip(&b.columns) {
                dst.append(src);
            }
        }
        RecordBatch::new(first.schema.clone(), columns)
    }

    /// Approximate in-memory size.
    pub fn footprint(&self) -> usize {
        self.columns.iter().map(|c| c.footprint()).sum()
    }

    /// Pretty-prints the batch as an aligned text table (for examples and
    /// the CLI-style tooling).
    pub fn to_table_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            rows.push(
                self.columns
                    .iter()
                    .map(|c| c.value(i).to_string())
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for r in &rows {
            for (w, cell) in widths.iter_mut().zip(r) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for r in &rows {
            out.push('|');
            for (cell, w) in r.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// Row-context adapter so `feisu-sql`'s reference interpreter can read a
/// batch row (used for residual predicates and tests).
pub struct BatchRow<'a> {
    pub batch: &'a RecordBatch,
    pub row: usize,
}

impl feisu_sql::eval::RowContext for BatchRow<'_> {
    fn get(&self, column: &str) -> Option<Value> {
        self.batch.value_at(self.row, column)
    }
}

/// A borrowed batch: schema plus column references, no clones. Residual
/// filtering in the leaf reads block columns through this view instead of
/// copying every column into a scratch `RecordBatch`.
#[derive(Clone, Copy)]
pub struct BatchView<'a> {
    schema: &'a Schema,
    columns: &'a [Column],
}

impl<'a> BatchView<'a> {
    /// `columns[i]` must correspond to `schema.fields()[i]`; lengths are
    /// the caller's responsibility (a block or batch guarantees them).
    pub fn new(schema: &'a Schema, columns: &'a [Column]) -> BatchView<'a> {
        debug_assert_eq!(schema.len(), columns.len());
        BatchView { schema, columns }
    }

    pub fn value_at(&self, row: usize, column: &str) -> Option<Value> {
        self.schema
            .index_of(column)
            .map(|i| self.columns[i].value(row))
    }

    /// Row-context adapter over row `i`.
    pub fn row(self, row: usize) -> ViewRow<'a> {
        ViewRow { view: self, row }
    }
}

/// One row of a [`BatchView`], usable with the reference interpreter.
#[derive(Clone, Copy)]
pub struct ViewRow<'a> {
    view: BatchView<'a>,
    row: usize,
}

impl feisu_sql::eval::RowContext for ViewRow<'_> {
    fn get(&self, column: &str) -> Option<Value> {
        self.view.value_at(self.row, column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{DataType, Field};

    fn batch() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Utf8, false),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_utf8(vec!["x".into(), "y".into(), "z".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]);
        assert!(RecordBatch::new(schema.clone(), vec![]).is_err());
        assert!(RecordBatch::new(schema, vec![Column::from_bool(vec![true])]).is_err());
    }

    #[test]
    fn select_by_bitmap() {
        let b = batch();
        let bits = BitVec::from_bools([true, false, true]);
        let s = b.select(&bits).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.value_at(1, "a"), Some(Value::Int64(3)));
        // Wrong length rejected.
        assert!(b.select(&BitVec::zeros(5)).is_err());
    }

    #[test]
    fn concat_batches() {
        let b = batch();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.value_at(5, "b"), Some(Value::Utf8("z".into())));
        assert!(RecordBatch::concat(&[]).is_err());
    }

    #[test]
    fn empty_batch() {
        let e = RecordBatch::empty(batch().schema().clone());
        assert_eq!(e.rows(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn row_context_adapter() {
        use feisu_sql::eval::RowContext;
        let b = batch();
        let row = BatchRow { batch: &b, row: 1 };
        assert_eq!(row.get("a"), Some(Value::Int64(2)));
        assert_eq!(row.get("missing"), None);
    }

    #[test]
    fn batch_view_reads_without_cloning() {
        use feisu_sql::eval::RowContext;
        let b = batch();
        let view = BatchView::new(b.schema(), b.columns());
        assert_eq!(view.value_at(2, "b"), Some(Value::Utf8("z".into())));
        let row = view.row(0);
        assert_eq!(row.get("a"), Some(Value::Int64(1)));
        assert_eq!(row.get("missing"), None);
    }

    #[test]
    fn table_rendering() {
        let s = batch().to_table_string();
        assert!(s.contains("| a | b   |"), "{s}");
        assert!(s.contains("| 3 | 'z' |"), "{s}");
    }
}
