//! Hash aggregation with mergeable partial states.
//!
//! Feisu aggregates bottom-up: each leaf computes partial states over its
//! blocks, stem servers merge children, the master finalizes (§III-B).
//! `AggTable` is that partial state; it serializes to/from a
//! `RecordBatch` so it can travel the execution tree like any other data.

use crate::batch::{BatchRow, RecordBatch};
use crate::expr::coerce;
use feisu_common::hash::{FxHashMap, FxHashSet, FxHasher};
use feisu_common::{FeisuError, Result};
use feisu_format::{Column, ColumnBuilder, DataType, Field, Schema, Value};
use feisu_sql::ast::AggFunc;
use feisu_sql::eval::eval;
use feisu_sql::plan::AggExpr;

/// Partial state of one aggregate over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(i64),
    /// SUM: running total (int precision kept when possible) + whether
    /// any non-null input was seen (SUM of all-null is NULL).
    SumInt(i64, bool),
    SumFloat(f64, bool),
    /// AVG: (sum, count).
    Avg(f64, i64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc, out_type: DataType) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match out_type {
                DataType::Int64 => AggState::SumInt(0, false),
                _ => AggState::SumFloat(0.0, false),
            },
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::SumInt(s, seen) => {
                if let Some(i) = v.as_i64() {
                    *s = s.wrapping_add(i);
                    *seen = true;
                } else if !v.is_null() {
                    return Err(FeisuError::Execution(format!("SUM over non-numeric {v}")));
                }
            }
            AggState::SumFloat(s, seen) => {
                if let Some(f) = v.as_f64() {
                    *s += f;
                    *seen = true;
                } else if !v.is_null() {
                    return Err(FeisuError::Execution(format!("SUM over non-numeric {v}")));
                }
            }
            AggState::Avg(s, n) => {
                if let Some(f) = v.as_f64() {
                    *s += f;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(FeisuError::Execution(format!("AVG over non-numeric {v}")));
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() {
                    let replace = cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Less);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() {
                    let replace = cur
                        .as_ref()
                        .is_none_or(|c| v.total_cmp(c) == std::cmp::Ordering::Greater);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Counts a row for `COUNT(*)` (argument-less).
    fn count_row(&mut self) {
        if let AggState::Count(n) = self {
            *n += 1;
        }
    }

    fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a, sa), AggState::SumInt(b, sb)) => {
                *a = a.wrapping_add(*b);
                *sa |= sb;
            }
            (AggState::SumFloat(a, sa), AggState::SumFloat(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Avg(s1, n1), AggState::Avg(s2, n2)) => {
                *s1 += s2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    let replace = a
                        .as_ref()
                        .is_none_or(|av| bv.total_cmp(av) == std::cmp::Ordering::Less);
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    let replace = a
                        .as_ref()
                        .is_none_or(|bv2| bv.total_cmp(bv2) == std::cmp::Ordering::Greater);
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            _ => {
                return Err(FeisuError::Internal(
                    "merging incompatible aggregate states".into(),
                ))
            }
        }
        Ok(())
    }

    /// Final value.
    fn finish(&self, out_type: DataType) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(*n),
            AggState::SumInt(s, seen) => {
                if *seen {
                    Value::Int64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(s, seen) => {
                if *seen {
                    Value::Float64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::Avg(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float64(s / *n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => match v {
                None => Value::Null,
                Some(v) => coerce(v.clone(), out_type).unwrap_or_else(|_| v.clone()),
            },
        }
    }
}

/// Stable hash partition of a group key for the repartition exchange.
///
/// Uses the deterministic FxHash construction (no per-process seed), so
/// the same key lands in the same partition on every node, every run and
/// every platform — the property the exchange's "disjoint partitions"
/// invariant rests on. `parts <= 1` maps everything to partition 0.
pub fn partition_of(key: &[Value], parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    (h.finish() % parts as u64) as usize
}

/// Partial aggregation table: group key → per-aggregate states.
#[derive(Debug, Clone)]
pub struct AggTable {
    group_by: Vec<(feisu_sql::ast::Expr, String, DataType)>,
    aggregates: Vec<AggExpr>,
    groups: FxHashMap<Vec<Value>, Vec<AggState>>,
    /// Global aggregation (no GROUP BY) must produce one row even over
    /// zero input rows.
    global: bool,
}

impl AggTable {
    pub fn new(
        group_by: Vec<(feisu_sql::ast::Expr, String, DataType)>,
        aggregates: Vec<AggExpr>,
    ) -> AggTable {
        let global = group_by.is_empty();
        let mut t = AggTable {
            group_by,
            aggregates,
            groups: FxHashMap::default(),
            global,
        };
        if t.global {
            t.groups.insert(Vec::new(), t.fresh_states());
        }
        t
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.aggregates
            .iter()
            .map(|a| AggState::new(a.func, a.output_type))
            .collect()
    }

    /// Folds one batch into the table.
    pub fn update(&mut self, batch: &RecordBatch) -> Result<()> {
        for i in 0..batch.rows() {
            let row = BatchRow { batch, row: i };
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|(e, _, _)| eval(e, &row))
                .collect::<Result<_>>()?;
            let states = match self.groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    let fresh = self.fresh_states();
                    self.groups.entry(key).or_insert(fresh)
                }
            };
            for (state, agg) in states.iter_mut().zip(&self.aggregates) {
                match &agg.arg {
                    None => state.count_row(),
                    Some(arg) => {
                        let v = eval(arg, &row)?;
                        state.update(&v)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Merges another partial table (same shape) into this one.
    pub fn merge(&mut self, other: &AggTable) -> Result<()> {
        for (key, states) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    self.groups.insert(key.clone(), states.clone());
                }
            }
        }
        Ok(())
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Finalizes into the aggregate operator's output batch.
    pub fn finish(&self, output_schema: &Schema) -> Result<RecordBatch> {
        let mut builders: Vec<ColumnBuilder> = output_schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        // Deterministic output order: sort groups by key.
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        let ngroup = self.group_by.len();
        for key in keys {
            let states = &self.groups[key];
            for (i, v) in key.iter().enumerate() {
                let target = output_schema.field(i).data_type;
                builders[i].push(coerce(v.clone(), target)?);
            }
            for (j, (state, agg)) in states.iter().zip(&self.aggregates).enumerate() {
                let target = output_schema.field(ngroup + j).data_type;
                builders[ngroup + j].push(coerce(state.finish(agg.output_type), target)?);
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        RecordBatch::new(output_schema.clone(), columns)
    }

    // ---- shipping: partial tables travel the tree as record batches ----

    /// Schema of the shipped partial-state batch.
    pub fn transport_schema(&self) -> Schema {
        let mut fields: Vec<Field> = self
            .group_by
            .iter()
            .map(|(_, name, dt)| Field::new(format!("k:{name}"), *dt, true))
            .collect();
        for (i, a) in self.aggregates.iter().enumerate() {
            match a.func {
                AggFunc::Count => {
                    fields.push(Field::new(format!("s{i}:count"), DataType::Int64, true))
                }
                AggFunc::Sum => {
                    // Int64 sums ship as Int64: an f64 column would round
                    // values past 2^53 on the wire.
                    let sum_dt = if a.output_type == DataType::Int64 {
                        DataType::Int64
                    } else {
                        DataType::Float64
                    };
                    fields.push(Field::new(format!("s{i}:sum"), sum_dt, true));
                    fields.push(Field::new(format!("s{i}:seen"), DataType::Bool, true));
                }
                AggFunc::Avg => {
                    fields.push(Field::new(format!("s{i}:sum"), DataType::Float64, true));
                    fields.push(Field::new(format!("s{i}:count"), DataType::Int64, true));
                }
                AggFunc::Min | AggFunc::Max => {
                    fields.push(Field::new(format!("s{i}:extreme"), a.output_type, true))
                }
            }
        }
        Schema::new(fields)
    }

    /// Serializes the table to its transport batch.
    pub fn to_transport(&self) -> Result<RecordBatch> {
        let schema = self.transport_schema();
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        for (key, states) in &self.groups {
            let mut col = 0usize;
            for (i, v) in key.iter().enumerate() {
                builders[i].push(coerce(v.clone(), schema.field(i).data_type)?);
            }
            col += key.len();
            for state in states {
                match state {
                    AggState::Count(n) => {
                        builders[col].push(Value::Int64(*n));
                        col += 1;
                    }
                    AggState::SumInt(s, seen) => {
                        builders[col].push(Value::Int64(*s));
                        builders[col + 1].push(Value::Bool(*seen));
                        col += 2;
                    }
                    AggState::SumFloat(s, seen) => {
                        builders[col].push(Value::Float64(*s));
                        builders[col + 1].push(Value::Bool(*seen));
                        col += 2;
                    }
                    AggState::Avg(s, n) => {
                        builders[col].push(Value::Float64(*s));
                        builders[col + 1].push(Value::Int64(*n));
                        col += 2;
                    }
                    AggState::Min(v) | AggState::Max(v) => {
                        builders[col].push(match v {
                            None => Value::Null,
                            Some(v) => coerce(v.clone(), schema.field(col).data_type)?,
                        });
                        col += 1;
                    }
                }
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        RecordBatch::new(schema, columns)
    }

    /// Rebuilds a table from a transport batch produced by a peer with the
    /// same plan shape.
    pub fn from_transport(
        group_by: Vec<(feisu_sql::ast::Expr, String, DataType)>,
        aggregates: Vec<AggExpr>,
        batch: &RecordBatch,
    ) -> Result<AggTable> {
        let mut t = AggTable::new(group_by, aggregates);
        t.fold_transport(batch, None)?;
        Ok(t)
    }

    /// Folds a peer's transport batch directly into this table, merging
    /// states group by group — the shape (group-by exprs, aggregate list)
    /// is built once on the accumulator instead of being re-cloned into a
    /// throwaway `AggTable` per child. Returns the number of transport
    /// rows folded.
    pub fn merge_transport(&mut self, batch: &RecordBatch) -> Result<usize> {
        self.fold_transport(batch, None)
    }

    /// Folds only the rows of `batch` whose group key hashes to `part`
    /// (of `parts`) — one partition merger's share of the repartition
    /// exchange. Returns the number of rows folded.
    pub fn merge_transport_partition(
        &mut self,
        batch: &RecordBatch,
        part: usize,
        parts: usize,
    ) -> Result<usize> {
        self.fold_transport(batch, Some((part, parts)))
    }

    /// Shared transport fold. A well-formed transport batch carries each
    /// group key at most once; a duplicate within one batch means partial
    /// states were split and would be silently double-merged, so it is
    /// rejected as corruption (duplicates *across* batches are the normal
    /// merge case).
    fn fold_transport(
        &mut self,
        batch: &RecordBatch,
        slice: Option<(usize, usize)>,
    ) -> Result<usize> {
        let ngroup = self.group_by.len();
        let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
        let mut folded = 0usize;
        for row in 0..batch.rows() {
            let key: Vec<Value> = (0..ngroup).map(|c| batch.column(c).value(row)).collect();
            if let Some((part, parts)) = slice {
                if partition_of(&key, parts) != part {
                    continue;
                }
            }
            if !seen.insert(key.clone()) {
                return Err(FeisuError::Corrupt("transport: duplicate group key".into()));
            }
            let mut col = ngroup;
            let mut states = Vec::with_capacity(self.aggregates.len());
            for a in &self.aggregates {
                let state = match a.func {
                    AggFunc::Count => {
                        let n = batch.column(col).value(row).as_i64().ok_or_else(|| {
                            FeisuError::Corrupt("transport: count not int".into())
                        })?;
                        col += 1;
                        AggState::Count(n)
                    }
                    AggFunc::Sum => {
                        let v = batch.column(col).value(row);
                        let seen = batch.column(col + 1).value(row).as_bool().unwrap_or(false);
                        col += 2;
                        if a.output_type == DataType::Int64 {
                            // Exact i64 round-trip — no float detour.
                            AggState::SumInt(v.as_i64().unwrap_or(0), seen)
                        } else {
                            AggState::SumFloat(v.as_f64().unwrap_or(0.0), seen)
                        }
                    }
                    AggFunc::Avg => {
                        let s = batch.column(col).value(row).as_f64().unwrap_or(0.0);
                        let n = batch.column(col + 1).value(row).as_i64().unwrap_or(0);
                        col += 2;
                        AggState::Avg(s, n)
                    }
                    AggFunc::Min => {
                        let v = batch.column(col).value(row);
                        col += 1;
                        AggState::Min((!v.is_null()).then_some(v))
                    }
                    AggFunc::Max => {
                        let v = batch.column(col).value(row);
                        col += 1;
                        AggState::Max((!v.is_null()).then_some(v))
                    }
                };
                states.push(state);
            }
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
                None => {
                    self.groups.insert(key, states);
                }
            }
            folded += 1;
        }
        Ok(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_sql::ast::Expr;

    fn input() -> RecordBatch {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Utf8, false),
            Field::new("v", DataType::Int64, true),
        ]);
        RecordBatch::new(
            schema,
            vec![
                Column::from_utf8(vec![
                    "a".into(),
                    "b".into(),
                    "a".into(),
                    "b".into(),
                    "a".into(),
                ]),
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(1),
                        Value::Int64(10),
                        Value::Int64(2),
                        Value::Null,
                        Value::Int64(3),
                    ],
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "COUNT(*)".into(),
                output_type: DataType::Int64,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col("v")),
                name: "SUM(v)".into(),
                output_type: DataType::Int64,
            },
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(Expr::col("v")),
                name: "AVG(v)".into(),
                output_type: DataType::Float64,
            },
            AggExpr {
                func: AggFunc::Min,
                arg: Some(Expr::col("v")),
                name: "MIN(v)".into(),
                output_type: DataType::Int64,
            },
            AggExpr {
                func: AggFunc::Max,
                arg: Some(Expr::col("v")),
                name: "MAX(v)".into(),
                output_type: DataType::Int64,
            },
        ]
    }

    fn group_by() -> Vec<(Expr, String, DataType)> {
        vec![(Expr::col("g"), "g".into(), DataType::Utf8)]
    }

    fn out_schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Utf8, true),
            Field::new("COUNT(*)", DataType::Int64, true),
            Field::new("SUM(v)", DataType::Int64, true),
            Field::new("AVG(v)", DataType::Float64, true),
            Field::new("MIN(v)", DataType::Int64, true),
            Field::new("MAX(v)", DataType::Int64, true),
        ])
    }

    #[test]
    fn grouped_aggregation() {
        let mut t = AggTable::new(group_by(), aggs());
        t.update(&input()).unwrap();
        let out = t.finish(&out_schema()).unwrap();
        assert_eq!(out.rows(), 2);
        // Group "a": count 3, sum 6, avg 2, min 1, max 3.
        assert_eq!(out.value_at(0, "g"), Some(Value::Utf8("a".into())));
        assert_eq!(out.value_at(0, "COUNT(*)"), Some(Value::Int64(3)));
        assert_eq!(out.value_at(0, "SUM(v)"), Some(Value::Int64(6)));
        assert_eq!(out.value_at(0, "AVG(v)"), Some(Value::Float64(2.0)));
        // Group "b": count 2 (COUNT(*) counts null rows), sum 10, avg 10.
        assert_eq!(out.value_at(1, "COUNT(*)"), Some(Value::Int64(2)));
        assert_eq!(out.value_at(1, "SUM(v)"), Some(Value::Int64(10)));
        assert_eq!(out.value_at(1, "AVG(v)"), Some(Value::Float64(10.0)));
        assert_eq!(out.value_at(1, "MIN(v)"), Some(Value::Int64(10)));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let t = AggTable::new(Vec::new(), aggs());
        let schema = Schema::new(out_schema().fields()[1..].to_vec());
        let out = t.finish(&schema).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value_at(0, "COUNT(*)"), Some(Value::Int64(0)));
        assert_eq!(out.value_at(0, "SUM(v)"), Some(Value::Null));
        assert_eq!(out.value_at(0, "AVG(v)"), Some(Value::Null));
        assert_eq!(out.value_at(0, "MIN(v)"), Some(Value::Null));
    }

    #[test]
    fn merge_equals_single_pass() {
        let batch = input();
        let mut whole = AggTable::new(group_by(), aggs());
        whole.update(&batch).unwrap();

        let first = batch.take(&[0, 1]).unwrap();
        let second = batch.take(&[2, 3, 4]).unwrap();
        let mut a = AggTable::new(group_by(), aggs());
        a.update(&first).unwrap();
        let mut b = AggTable::new(group_by(), aggs());
        b.update(&second).unwrap();
        a.merge(&b).unwrap();

        assert_eq!(
            a.finish(&out_schema()).unwrap(),
            whole.finish(&out_schema()).unwrap()
        );
    }

    #[test]
    fn transport_roundtrip_preserves_merge_semantics() {
        let batch = input();
        let mut t = AggTable::new(group_by(), aggs());
        t.update(&batch).unwrap();
        let shipped = t.to_transport().unwrap();
        let back = AggTable::from_transport(group_by(), aggs(), &shipped).unwrap();
        assert_eq!(
            back.finish(&out_schema()).unwrap(),
            t.finish(&out_schema()).unwrap()
        );
        // And merging two shipped halves equals the whole.
        let mut a = AggTable::new(group_by(), aggs());
        a.update(&batch.take(&[0, 1]).unwrap()).unwrap();
        let mut b = AggTable::new(group_by(), aggs());
        b.update(&batch.take(&[2, 3, 4]).unwrap()).unwrap();
        let mut merged =
            AggTable::from_transport(group_by(), aggs(), &a.to_transport().unwrap()).unwrap();
        let b2 = AggTable::from_transport(group_by(), aggs(), &b.to_transport().unwrap()).unwrap();
        merged.merge(&b2).unwrap();
        let mut whole = AggTable::new(group_by(), aggs());
        whole.update(&batch).unwrap();
        assert_eq!(
            merged.finish(&out_schema()).unwrap(),
            whole.finish(&out_schema()).unwrap()
        );
    }

    #[test]
    fn global_transport_roundtrip_empty() {
        // A leaf that saw zero rows ships a one-row zero state; merging N
        // of them still yields COUNT(*)=0.
        let t = AggTable::new(Vec::new(), aggs());
        let shipped = t.to_transport().unwrap();
        let back = AggTable::from_transport(Vec::new(), aggs(), &shipped).unwrap();
        let schema = Schema::new(out_schema().fields()[1..].to_vec());
        assert_eq!(
            back.finish(&schema).unwrap().value_at(0, "COUNT(*)"),
            Some(Value::Int64(0))
        );
    }

    #[test]
    fn int_sum_transport_is_exact_past_2_53() {
        // 2^53 + 1 is the first integer f64 cannot represent; the old
        // Float64 transport column rounded it to 2^53.
        let big = (1i64 << 53) + 1;
        let schema = Schema::new(vec![Field::new("v", DataType::Int64, false)]);
        let batch = RecordBatch::new(schema, vec![Column::from_i64(vec![big - 5, 5])]).unwrap();
        let sum = vec![AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col("v")),
            name: "SUM(v)".into(),
            output_type: DataType::Int64,
        }];
        let mut t = AggTable::new(Vec::new(), sum.clone());
        t.update(&batch).unwrap();
        let shipped = t.to_transport().unwrap();
        assert_eq!(
            shipped.schema().fields()[0].data_type,
            DataType::Int64,
            "Int64 sums must ship as an Int64 column"
        );
        let back = AggTable::from_transport(Vec::new(), sum, &shipped).unwrap();
        let out = Schema::new(vec![Field::new("SUM(v)", DataType::Int64, true)]);
        assert_eq!(
            back.finish(&out).unwrap().value_at(0, "SUM(v)"),
            Some(Value::Int64(big))
        );
    }

    #[test]
    fn duplicate_transport_group_key_rejected() {
        let mut t = AggTable::new(group_by(), aggs());
        t.update(&input()).unwrap();
        let shipped = t.to_transport().unwrap();
        // Replaying the same group row twice must not silently drop the
        // first copy's states.
        let dup = shipped.take(&[0, 0]).unwrap();
        assert!(matches!(
            AggTable::from_transport(group_by(), aggs(), &dup),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn partitioned_fold_union_equals_unpartitioned_merge() {
        let batch = input();
        // Two peers ship overlapping group sets.
        let mut a = AggTable::new(group_by(), aggs());
        a.update(&batch.take(&[0, 1, 2]).unwrap()).unwrap();
        let mut b = AggTable::new(group_by(), aggs());
        b.update(&batch.take(&[3, 4]).unwrap()).unwrap();
        let transports = [a.to_transport().unwrap(), b.to_transport().unwrap()];

        let mut whole = AggTable::new(group_by(), aggs());
        for t in &transports {
            whole.merge_transport(t).unwrap();
        }
        let expected = whole.finish(&out_schema()).unwrap();

        for parts in 1..=8usize {
            // Each partition merger folds only its slice of every peer's
            // transport; the union of the disjoint slices must equal the
            // unpartitioned merge, and row counts must add up exactly.
            let mut union = AggTable::new(group_by(), aggs());
            let mut folded = 0usize;
            for part in 0..parts {
                let mut p = AggTable::new(group_by(), aggs());
                for t in &transports {
                    folded += p.merge_transport_partition(t, part, parts).unwrap();
                }
                union.merge(&p).unwrap();
            }
            assert_eq!(
                folded,
                transports.iter().map(|t| t.rows()).sum::<usize>(),
                "every transport row lands in exactly one partition"
            );
            assert_eq!(
                union.finish(&out_schema()).unwrap(),
                expected,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        let keys = [
            vec![Value::Utf8("a".into())],
            vec![Value::Int64(42), Value::Utf8("x".into())],
            vec![Value::Null],
            vec![],
        ];
        for key in &keys {
            assert_eq!(partition_of(key, 1), 0);
            for parts in 2..=16usize {
                let p = partition_of(key, parts);
                assert!(p < parts);
                // FxHash is seedless: same key, same partition, always.
                assert_eq!(p, partition_of(key, parts));
            }
        }
        // Distinct keys should not all collapse onto one partition.
        let spread: FxHashSet<usize> = (0..64i64)
            .map(|i| partition_of(&[Value::Int64(i)], 8))
            .collect();
        assert!(spread.len() > 1, "64 keys hashed to a single partition");
    }

    #[test]
    fn duplicate_key_within_partition_slice_rejected() {
        let mut t = AggTable::new(group_by(), aggs());
        t.update(&input()).unwrap();
        let shipped = t.to_transport().unwrap();
        let dup = shipped.take(&[0, 0]).unwrap();
        // Row 0's key lands in exactly one partition p of 4; folding the
        // duplicated batch for that p must still trip the corruption check.
        let key: Vec<Value> = vec![dup.column(0).value(0)];
        let part = partition_of(&key, 4);
        let mut acc = AggTable::new(group_by(), aggs());
        assert!(matches!(
            acc.merge_transport_partition(&dup, part, 4),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn sum_type_error_detected() {
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8, false)]);
        let batch = RecordBatch::new(schema, vec![Column::from_utf8(vec!["x".into()])]).unwrap();
        let mut t = AggTable::new(
            Vec::new(),
            vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col("s")),
                name: "SUM(s)".into(),
                output_type: DataType::Utf8,
            }],
        );
        assert!(t.update(&batch).is_err());
    }
}
