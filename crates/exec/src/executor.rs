//! Logical-plan executor over a pluggable scan source.
//!
//! The distributed engine in `feisu-core` splits a plan at its scans and
//! runs the fragments on leaf servers; this executor is the shared
//! machinery that runs *any* plan given something that can produce scan
//! output. With [`MemProvider`] it doubles as the single-process oracle
//! the integration tests compare the cluster against.

use crate::aggregate::AggTable;
use crate::batch::RecordBatch;
use crate::join::join;
use crate::ops::{filter, limit, project};
use crate::sort::sort;
use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, Result};
use feisu_format::{Column, Field, Schema};
use feisu_sql::ast::Expr;
use feisu_sql::plan::LogicalPlan;

/// Produces the rows of one table scan.
pub trait ScanProvider {
    /// Returns the scan output: the named columns of `table` (storage
    /// names in `projection`), with `predicate` already applied or not —
    /// the provider reports which via the bool (false = executor must
    /// apply the predicate itself).
    fn scan(
        &mut self,
        table: &str,
        projection: &[String],
        predicate: Option<&Expr>,
        output_schema: &Schema,
    ) -> Result<(RecordBatch, bool)>;
}

/// In-memory tables keyed by name; applies predicates itself (so the
/// executor path through residual filtering is exercised).
#[derive(Default)]
pub struct MemProvider {
    tables: FxHashMap<String, RecordBatch>,
}

impl MemProvider {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, batch: RecordBatch) {
        self.tables.insert(name.into(), batch);
    }

    pub fn get(&self, name: &str) -> Option<&RecordBatch> {
        self.tables.get(name)
    }
}

impl ScanProvider for MemProvider {
    fn scan(
        &mut self,
        table: &str,
        projection: &[String],
        predicate: Option<&Expr>,
        output_schema: &Schema,
    ) -> Result<(RecordBatch, bool)> {
        let src = self
            .tables
            .get(table)
            .ok_or_else(|| FeisuError::Execution(format!("unknown table `{table}`")))?;
        // The scan's predicate may reference columns outside the
        // projection (a Scan node evaluates its own predicate), so filter
        // the full source rows first. Canonical names are mapped to
        // storage names by stripping the table qualifier.
        let selected: Option<Vec<usize>> = match predicate {
            None => None,
            Some(p) => {
                let storage_pred = strip_qualifiers(p);
                Some(
                    crate::expr::eval_predicate(src, &storage_pred)?
                        .iter_ones()
                        .collect(),
                )
            }
        };
        let mut columns: Vec<Column> = Vec::with_capacity(projection.len());
        for name in projection {
            let c = src.column_by_name(name).ok_or_else(|| {
                FeisuError::Execution(format!("table `{table}` has no column `{name}`"))
            })?;
            columns.push(match &selected {
                Some(idx) => c.take(idx),
                None => c.clone(),
            });
        }
        // Rename to the plan's canonical (possibly qualified) names.
        let fields: Vec<Field> = output_schema.fields().to_vec();
        let batch = RecordBatch::new(Schema::new(fields), columns)?;
        Ok((batch, true))
    }
}

pub use feisu_sql::exprutil::strip_qualifiers;

/// Runs a logical plan to completion, returning one batch.
pub fn execute(plan: &LogicalPlan, provider: &mut dyn ScanProvider) -> Result<RecordBatch> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            predicate,
            output_schema,
            ..
        } => {
            let (batch, applied) =
                provider.scan(table, projection, predicate.as_ref(), output_schema)?;
            if !applied {
                if let Some(p) = predicate {
                    return filter(&batch, p);
                }
            }
            Ok(batch)
        }
        LogicalPlan::Filter { input, predicate } => {
            let batch = execute(input, provider)?;
            filter(&batch, predicate)
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let batch = execute(input, provider)?;
            project(&batch, exprs, output_schema)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => {
            let l = execute(left, provider)?;
            let r = execute(right, provider)?;
            join(&l, &r, *kind, on, output_schema)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => {
            let batch = execute(input, provider)?;
            let mut table = AggTable::new(group_by.clone(), aggregates.clone());
            table.update(&batch)?;
            table.finish(output_schema)
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let batch = execute(input, provider)?;
            sort(&batch, keys, *fetch)
        }
        LogicalPlan::Limit { input, fetch } => {
            let batch = execute(input, provider)?;
            limit(&batch, *fetch)
        }
        LogicalPlan::Empty { output_schema } => Ok(RecordBatch::empty(output_schema.clone())),
    }
}

/// Convenience: parse, analyze, plan, optimize and execute one SQL string
/// against in-memory tables — the one-call oracle used across the test
/// suite.
pub fn run_sql(sql: &str, provider: &mut MemProvider) -> Result<RecordBatch> {
    let query = feisu_sql::parser::parse_query(sql)?;
    let mut catalog: FxHashMap<String, Schema> = FxHashMap::default();
    for (name, batch) in provider.tables.iter() {
        catalog.insert(name.clone(), batch.schema().clone());
    }
    let resolved = feisu_sql::analyze::analyze(&query, &catalog)?;
    let plan = feisu_sql::plan::build_plan(&resolved)?;
    let plan = feisu_sql::optimizer::optimize(plan)?;
    execute(&plan, provider)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_format::{DataType, Value};

    fn provider() -> MemProvider {
        let mut p = MemProvider::new();
        let schema = Schema::new(vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("clicks", DataType::Int64, true),
            Field::new("score", DataType::Float64, false),
        ]);
        let batch = RecordBatch::new(
            schema,
            vec![
                Column::from_utf8(vec![
                    "a.com".into(),
                    "b.com".into(),
                    "a.com".into(),
                    "c.com".into(),
                    "b.com".into(),
                    "a.com".into(),
                ]),
                Column::from_values(
                    DataType::Int64,
                    &[
                        Value::Int64(10),
                        Value::Int64(5),
                        Value::Int64(20),
                        Value::Null,
                        Value::Int64(15),
                        Value::Int64(30),
                    ],
                )
                .unwrap(),
                Column::from_f64(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            ],
        )
        .unwrap();
        p.insert("t1", batch);

        let dim_schema = Schema::new(vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("rank", DataType::Int64, false),
        ]);
        let dim = RecordBatch::new(
            dim_schema,
            vec![
                Column::from_utf8(vec!["a.com".into(), "b.com".into()]),
                Column::from_i64(vec![1, 2]),
            ],
        )
        .unwrap();
        p.insert("dims", dim);
        p
    }

    #[test]
    fn select_where_projection() {
        let mut p = provider();
        let out = run_sql("SELECT url FROM t1 WHERE clicks > 10", &mut p).unwrap();
        assert_eq!(out.rows(), 3);
        assert_eq!(out.schema().field(0).name, "url");
    }

    #[test]
    fn count_star_counts_all_rows() {
        let mut p = provider();
        let out = run_sql("SELECT COUNT(*) FROM t1", &mut p).unwrap();
        assert_eq!(out.column(0).value(0), Value::Int64(6));
    }

    #[test]
    fn paper_q1_shape() {
        let mut p = provider();
        let out = run_sql(
            "SELECT COUNT(*) FROM t1 WHERE (clicks > 0) AND (clicks <= 15)",
            &mut p,
        )
        .unwrap();
        assert_eq!(out.column(0).value(0), Value::Int64(3));
    }

    #[test]
    fn group_by_having_order_limit() {
        let mut p = provider();
        let out = run_sql(
            "SELECT url, SUM(clicks) AS total FROM t1 \
             GROUP BY url HAVING total > 5 ORDER BY total DESC LIMIT 2",
            &mut p,
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value_at(0, "url"), Some(Value::Utf8("a.com".into())));
        assert_eq!(out.value_at(0, "total"), Some(Value::Int64(60)));
        assert_eq!(out.value_at(1, "total"), Some(Value::Int64(20)));
    }

    #[test]
    fn join_and_aggregate() {
        let mut p = provider();
        let out = run_sql(
            "SELECT rank, COUNT(*) AS n FROM t1 JOIN dims ON t1.url = dims.url \
             GROUP BY rank ORDER BY rank",
            &mut p,
        )
        .unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.value_at(0, "rank"), Some(Value::Int64(1)));
        assert_eq!(out.value_at(0, "n"), Some(Value::Int64(3)));
        assert_eq!(out.value_at(1, "n"), Some(Value::Int64(2)));
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let mut p = provider();
        let out = run_sql(
            "SELECT t1.url, rank FROM t1 LEFT JOIN dims ON t1.url = dims.url \
             WHERE t1.clicks IS NULL",
            &mut p,
        )
        .unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.value_at(0, "rank"), Some(Value::Null));
    }

    #[test]
    fn avg_and_contains() {
        let mut p = provider();
        let out = run_sql(
            "SELECT AVG(score) FROM t1 WHERE url CONTAINS 'a.com'",
            &mut p,
        )
        .unwrap();
        let avg = out.column(0).value(0).as_f64().unwrap();
        assert!((avg - (0.1 + 0.3 + 0.6) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_table_errors() {
        let mut p = provider();
        assert!(run_sql("SELECT 1 FROM ghost", &mut p).is_err());
    }

    #[test]
    fn order_by_unprojected_column() {
        let mut p = provider();
        let out = run_sql("SELECT url FROM t1 ORDER BY clicks DESC LIMIT 1", &mut p).unwrap();
        assert_eq!(out.value_at(0, "url"), Some(Value::Utf8("a.com".into())));
    }

    #[test]
    fn arithmetic_projection() {
        let mut p = provider();
        let out = run_sql("SELECT clicks * 2 AS d FROM t1 WHERE clicks = 5", &mut p).unwrap();
        assert_eq!(out.value_at(0, "d"), Some(Value::Int64(10)));
    }
}
