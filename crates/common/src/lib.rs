//! Shared foundation types for the Feisu workspace.
//!
//! This crate holds the small, dependency-free vocabulary used by every
//! other Feisu crate: error types, strongly-typed identifiers, byte/time
//! units, a deterministic random-number generator, and a fast non-DoS-safe
//! hasher used for internal hash tables.

pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod units;

pub use error::{FeisuError, Result};
pub use ids::{BlockId, DomainId, JobId, NodeId, QueryId, TaskId, UserId};
pub use units::{ByteSize, SimDuration, SimInstant};
