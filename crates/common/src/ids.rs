//! Strongly-typed identifiers.
//!
//! Feisu passes many small integer identifiers between subsystems (nodes,
//! jobs, tasks, storage domains, data blocks). Newtypes prevent the classic
//! bug of handing a task id to an API expecting a node id, at zero runtime
//! cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw integer value.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// A physical (simulated) cluster node.
    NodeId,
    "node-"
);
define_id!(
    /// A user query accepted by the client layer.
    QueryId,
    "query-"
);
define_id!(
    /// A job created by the master's job manager for one query.
    JobId,
    "job-"
);
define_id!(
    /// One task within a job, executed on a leaf or stem server.
    TaskId,
    "task-"
);
define_id!(
    /// A storage domain (one independent storage system).
    DomainId,
    "domain-"
);
define_id!(
    /// A data block within a table partition.
    BlockId,
    "block-"
);
define_id!(
    /// An authenticated Feisu user.
    UserId,
    "user-"
);

/// Monotonic id generator; each subsystem owns one per id space.
#[derive(Debug, Default)]
pub struct IdGen {
    next: std::sync::atomic::AtomicU64,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next id in the sequence.
    pub fn next_u64(&self) -> u64 {
        self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(TaskId(0).to_string(), "task-0");
        assert_eq!(DomainId(3).to_string(), "domain-3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(BlockId(1));
        s.insert(BlockId(2));
        s.insert(BlockId(1));
        assert_eq!(s.len(), 2);
        assert!(BlockId(1) < BlockId(2));
    }

    #[test]
    fn idgen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next_u64();
        let b = g.next_u64();
        let c = g.next_u64();
        assert_eq!((a, b, c), (0, 1, 2));
    }
}
