//! Cluster-wide configuration knobs.
//!
//! These defaults mirror the paper's experiment setup (§VI-A): 4-core
//! 2.4 GHz nodes, 64 GB RAM, four 3 TB SATA disks, one 500 GB SSD, 1 Gbps
//! full-duplex Ethernet, 512 MB of SmartIndex memory per leaf, three
//! replicas per block, and the 72-hour index TTL from §IV-C-2.

use crate::units::{ByteSize, SimDuration};

/// How the block cache decides whether a missed block is worth caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAdmission {
    /// Ghost-LRU frequency filter: a block is admitted on its *second*
    /// sighting within the ghost's memory, so one-hit-wonders never evict
    /// hot blocks. Pinned prefixes bypass the filter.
    Frequency,
    /// Admit every offered block (the admission-off baseline).
    Always,
    /// Only pinned prefixes are admitted — the paper's manual §IV-B
    /// preference rules, i.e. the legacy single-tier behavior.
    PinnedOnly,
}

/// Knobs of the multi-tier block cache (memory + SSD per node, with a
/// ghost LRU driving admission).
#[derive(Debug, Clone)]
pub struct CacheSettings {
    /// Master switch. The cache is also enabled implicitly when a
    /// deployment configures pinned path prefixes.
    pub enabled: bool,
    /// DRAM tier capacity per node. `0` disables the memory tier
    /// (entries then live in the SSD tier only).
    pub mem_capacity_per_node: ByteSize,
    /// SSD tier capacity per node.
    pub ssd_capacity_per_node: ByteSize,
    /// Ghost-LRU capacity in keys per node (recently evicted and
    /// once-seen keys remembered for frequency-based admission). `0`
    /// disables the ghost, which makes `Frequency` admission reject all
    /// unpinned blocks.
    pub ghost_capacity: usize,
    pub admission: CacheAdmission,
    /// Time-to-live for cached entries; expired entries are misses and
    /// are dropped on probe. `None` = never expire.
    pub ttl: Option<SimDuration>,
    /// Default per-node cache byte quota applied to every user without an
    /// explicit override; `None` = unlimited.
    pub default_user_quota: Option<ByteSize>,
    /// Default per-node cache byte quota per table; `None` = unlimited.
    pub default_table_quota: Option<ByteSize>,
}

impl Default for CacheSettings {
    fn default() -> Self {
        CacheSettings {
            enabled: false,
            mem_capacity_per_node: ByteSize::gib(1),
            ssd_capacity_per_node: ByteSize::gib(16),
            ghost_capacity: 8192,
            admission: CacheAdmission::Frequency,
            ttl: None,
            default_user_quota: None,
            default_table_quota: None,
        }
    }
}

impl CacheSettings {
    /// The pre-hierarchy behavior as a config point: one SSD tier of the
    /// old default capacity, admission by pinned prefix only, no ghost,
    /// no TTL, no quotas.
    pub fn legacy_single_tier() -> Self {
        CacheSettings {
            enabled: true,
            mem_capacity_per_node: ByteSize::ZERO,
            ssd_capacity_per_node: ByteSize::gib(16),
            ghost_capacity: 0,
            admission: CacheAdmission::PinnedOnly,
            ttl: None,
            default_user_quota: None,
            default_table_quota: None,
        }
    }

    /// Validates invariants; mirrors [`FeisuConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled
            && self.mem_capacity_per_node.as_u64() == 0
            && self.ssd_capacity_per_node.as_u64() == 0
        {
            return Err("cache enabled with zero capacity in both tiers".into());
        }
        if self.ttl.is_some_and(|t| t == SimDuration::ZERO) {
            return Err("cache ttl must be > 0 when set".into());
        }
        Ok(())
    }
}

/// Shape of the merge tree that folds leaf results up to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeTreeShape {
    /// Topology-derived multi-level tree for aggregate transports:
    /// leaf → rack stem → DC stem → master, with hop costs computed from
    /// real node distances and a hash-partitioned repartition exchange
    /// between levels. Row scans keep submission-contiguous stem groups
    /// (result order is part of their contract) but still bill hops from
    /// real distances.
    Topology,
    /// The legacy two-level shape: leaves chunked into stems in
    /// submission order, one serial root merge at the master, no
    /// exchange. Kept as the measurable baseline for
    /// `bench_distributed_agg`.
    TwoLevel,
}

/// Knobs of the distributed merge tree and its aggregate exchange.
#[derive(Debug, Clone)]
pub struct MergeTreeSettings {
    pub shape: MergeTreeShape,
    /// Hash partitions of the repartition exchange for aggregate
    /// transports: group keys are hashed into this many disjoint
    /// partitions, each merged by its own stem merger in parallel, so no
    /// single merger materializes the full group map. `1` disables the
    /// exchange; global (no GROUP BY) aggregates always bypass it. The
    /// two-level shape ignores it (it *is* the no-exchange baseline).
    /// Answers are bit-identical at any partition count.
    pub exchange_partitions: usize,
}

impl Default for MergeTreeSettings {
    fn default() -> Self {
        MergeTreeSettings {
            shape: MergeTreeShape::Topology,
            exchange_partitions: 4,
        }
    }
}

impl MergeTreeSettings {
    /// Validates invariants; mirrors [`FeisuConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.exchange_partitions == 0 {
            return Err("merge_tree.exchange_partitions must be >= 1".into());
        }
        if self.exchange_partitions > 1024 {
            return Err("merge_tree.exchange_partitions must be <= 1024".into());
        }
        Ok(())
    }
}

/// Knobs of the logical optimizer and the cost-based join-order search.
#[derive(Debug, Clone)]
pub struct OptimizerSettings {
    /// Master kill-switch. When off, queries execute their unrewritten
    /// logical plans (no pushdown, no pruning, no reordering) — the
    /// debugging baseline. Results are identical either way; only the
    /// work done to produce them changes.
    pub enabled: bool,
    /// Cost-based join reordering at lowering time. Requires `enabled`;
    /// can be switched off separately to pin the syntactic join order
    /// while keeping the rewrite rules.
    pub join_reorder: bool,
    /// Join regions up to this many relations are ordered by exhaustive
    /// left-deep dynamic programming; larger regions use a greedy
    /// heuristic. Range 2..=12 (DP is O(2ⁿ·n)).
    pub dp_limit: usize,
}

impl Default for OptimizerSettings {
    fn default() -> Self {
        OptimizerSettings {
            enabled: true,
            join_reorder: true,
            dp_limit: 6,
        }
    }
}

impl OptimizerSettings {
    /// Validates invariants; mirrors [`FeisuConfig::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=12).contains(&self.dp_limit) {
            return Err("optimizer.dp_limit must be in 2..=12".into());
        }
        Ok(())
    }
}

/// Top-level configuration for a Feisu deployment/simulation.
#[derive(Debug, Clone)]
pub struct FeisuConfig {
    /// Memory budget per leaf server for SmartIndex storage.
    pub index_memory_per_leaf: ByteSize,
    /// Time-to-live for a SmartIndex entry (paper: 72 hours).
    pub index_ttl: SimDuration,
    /// Block replica count in distributed storage systems.
    pub replication_factor: usize,
    /// Target (uncompressed) size of a columnar data block.
    pub block_size: ByteSize,
    /// Heartbeat period between workers and the cluster manager.
    pub heartbeat_interval: SimDuration,
    /// Heartbeats missed before a worker is declared dead.
    pub heartbeat_miss_limit: u32,
    /// Delay after which the scheduler launches a backup (speculative) task
    /// for a straggler.
    pub backup_task_delay: SimDuration,
    /// Fraction of tasks that must finish before a job may return partial
    /// results (1.0 = all). Users may lower it per query.
    pub default_processed_ratio: f64,
    /// Optional global response-time limit per query; `None` = unlimited.
    pub default_time_limit: Option<SimDuration>,
    /// Maximum share of a storage node's resources Feisu may consume
    /// (the resource consumption agreement of §V-A).
    pub resource_agreement_share: f64,
    /// The multi-tier block cache (memory + SSD per node).
    pub cache: CacheSettings,
    /// Fan-out of the execution tree: leaves per stem server.
    pub leaves_per_stem: usize,
    /// Shape of the distributed merge tree and its aggregate exchange.
    pub merge_tree: MergeTreeSettings,
    /// Results larger than this are dumped to global storage and only
    /// their location travels the read-data flow (§V-C: "If the data are
    /// too big, it will be dumped to global storage and only the location
    /// information is passed").
    pub result_spill_threshold: ByteSize,
    /// Worker threads for real (wall-clock) leaf-task execution on the
    /// master. `0` = auto (use available parallelism); `1` = serial
    /// execution (the pre-pool behavior). Simulated results are
    /// bit-identical at every setting — this knob only changes how fast
    /// the simulation itself runs.
    pub execution_threads: usize,
    /// Real-time leaf service emulation for wall-clock concurrency
    /// benchmarks: each leaf task additionally *blocks* its calling
    /// thread for `simulated task time × this factor` of wall clock,
    /// emulating the RPC to a remote leaf whose device occupies that
    /// long. `0.0` (the default) disables it entirely. The wait happens
    /// with no engine lock held, so it changes nothing about simulated
    /// results — it only makes query overlap (or the lack of it)
    /// observable on a wall clock.
    pub leaf_wait_dilation: f64,
    /// Capacity of the always-on query event log behind
    /// `system.queries` (a bounded ring buffer; oldest records are
    /// evicted first). Must be >= 1.
    pub query_log_capacity: usize,
    /// Kill-switch for zone-map block skipping at the leaves. Ingest
    /// always writes zone maps into block footers; this only controls
    /// whether leaf scans *evaluate* them to skip provably-dead blocks
    /// before decoding any column chunk.
    pub zone_maps: bool,
    /// The logical optimizer and cost-based join-order search.
    pub optimizer: OptimizerSettings,
}

impl Default for FeisuConfig {
    fn default() -> Self {
        FeisuConfig {
            index_memory_per_leaf: ByteSize::mib(512),
            index_ttl: SimDuration::hours(72),
            replication_factor: 3,
            block_size: ByteSize::mib(4),
            heartbeat_interval: SimDuration::secs(3),
            heartbeat_miss_limit: 3,
            backup_task_delay: SimDuration::secs(5),
            default_processed_ratio: 1.0,
            default_time_limit: None,
            resource_agreement_share: 0.25,
            cache: CacheSettings::default(),
            leaves_per_stem: 64,
            merge_tree: MergeTreeSettings::default(),
            result_spill_threshold: ByteSize::mib(64),
            execution_threads: 0,
            leaf_wait_dilation: 0.0,
            query_log_capacity: 1024,
            zone_maps: true,
            optimizer: OptimizerSettings::default(),
        }
    }
}

impl FeisuConfig {
    /// Validates invariants; returns a message describing the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.replication_factor == 0 {
            return Err("replication_factor must be >= 1".into());
        }
        if self.block_size.as_u64() == 0 {
            return Err("block_size must be nonzero".into());
        }
        if !(0.0..=1.0).contains(&self.default_processed_ratio) {
            return Err("default_processed_ratio must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.resource_agreement_share) {
            return Err("resource_agreement_share must be in [0,1]".into());
        }
        if self.leaves_per_stem == 0 {
            return Err("leaves_per_stem must be >= 1".into());
        }
        if self.heartbeat_miss_limit == 0 {
            return Err("heartbeat_miss_limit must be >= 1".into());
        }
        if !self.leaf_wait_dilation.is_finite() || self.leaf_wait_dilation < 0.0 {
            return Err("leaf_wait_dilation must be finite and >= 0".into());
        }
        if self.query_log_capacity == 0 {
            return Err("query_log_capacity must be >= 1".into());
        }
        self.cache.validate()?;
        self.merge_tree.validate()?;
        self.optimizer.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = FeisuConfig::default();
        assert_eq!(c.index_memory_per_leaf, ByteSize::mib(512));
        assert_eq!(c.index_ttl, SimDuration::hours(72));
        assert_eq!(c.replication_factor, 3);
        // The cache is opt-in; its SSD tier default keeps the old
        // single-tier capacity.
        assert!(!c.cache.enabled);
        assert_eq!(c.cache.ssd_capacity_per_node, ByteSize::gib(16));
        assert_eq!(c.cache.admission, CacheAdmission::Frequency);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn legacy_cache_point_matches_old_behavior_shape() {
        let s = CacheSettings::legacy_single_tier();
        assert!(s.enabled);
        assert_eq!(s.mem_capacity_per_node, ByteSize::ZERO);
        assert_eq!(s.ssd_capacity_per_node, ByteSize::gib(16));
        assert_eq!(s.ghost_capacity, 0);
        assert_eq!(s.admission, CacheAdmission::PinnedOnly);
        assert!(s.ttl.is_none());
        assert!(s.default_user_quota.is_none() && s.default_table_quota.is_none());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn cache_settings_validation() {
        let mut s = CacheSettings {
            enabled: true,
            mem_capacity_per_node: ByteSize::ZERO,
            ssd_capacity_per_node: ByteSize::ZERO,
            ..CacheSettings::default()
        };
        assert!(s.validate().is_err(), "both tiers empty");
        s.ssd_capacity_per_node = ByteSize::mib(1);
        assert!(s.validate().is_ok());
        s.ttl = Some(SimDuration::ZERO);
        assert!(s.validate().is_err(), "zero ttl");
        let mut c = FeisuConfig::default();
        c.cache.enabled = true;
        c.cache.mem_capacity_per_node = ByteSize::ZERO;
        c.cache.ssd_capacity_per_node = ByteSize::ZERO;
        assert!(c.validate().is_err(), "config validation covers the cache");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validate_rejects_bad_values() {
        let mut c = FeisuConfig::default();
        c.replication_factor = 0;
        assert!(c.validate().is_err());

        let mut c = FeisuConfig::default();
        c.default_processed_ratio = 1.5;
        assert!(c.validate().is_err());

        let mut c = FeisuConfig::default();
        c.leaves_per_stem = 0;
        assert!(c.validate().is_err());

        let mut c = FeisuConfig::default();
        c.query_log_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn optimizer_defaults_and_validation() {
        let c = FeisuConfig::default();
        assert!(c.optimizer.enabled);
        assert!(c.optimizer.join_reorder);
        assert_eq!(c.optimizer.dp_limit, 6);
        assert!(c.validate().is_ok());

        let mut c = FeisuConfig::default();
        c.optimizer.dp_limit = 1;
        assert!(c.validate().is_err(), "dp over a single relation");
        c.optimizer.dp_limit = 13;
        assert!(c.validate().is_err(), "exponential blowup guard");
        c.optimizer.dp_limit = 2;
        c.optimizer.enabled = false;
        assert!(c.validate().is_ok(), "kill-switch is a valid point");
    }

    #[test]
    fn merge_tree_defaults_and_validation() {
        let c = FeisuConfig::default();
        assert_eq!(c.merge_tree.shape, MergeTreeShape::Topology);
        assert_eq!(c.merge_tree.exchange_partitions, 4);
        assert!(c.validate().is_ok());

        let mut c = FeisuConfig::default();
        c.merge_tree.exchange_partitions = 0;
        assert!(c.validate().is_err(), "zero partitions");
        c.merge_tree.exchange_partitions = 4096;
        assert!(c.validate().is_err(), "absurd partition count");
        c.merge_tree.exchange_partitions = 1;
        c.merge_tree.shape = MergeTreeShape::TwoLevel;
        assert!(c.validate().is_ok(), "legacy baseline is a valid point");
    }
}
