//! Deterministic pseudo-random number generation.
//!
//! Benchmarks and workload generators must be exactly reproducible across
//! runs and machines, so Feisu uses its own small splitmix64/xoshiro256**
//! generator seeded explicitly everywhere instead of thread-local entropy.
//! (The external `rand` crate is still used in a few generators through the
//! adapters in `feisu-workload`; this type is the workspace default.)

/// xoshiro256** with a splitmix64 seeding routine. Deterministic, seedable,
/// and fast enough to sit inside data generators.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // generators only need statistical uniformity, not exactness.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index into a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform i64 in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let v = (self.next_u64() as u128) % span;
        (lo as i128 + v as i128) as i64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a Zipf-distributed rank in `[0, n)` with exponent `theta`.
    /// Used by trace generators to model hot columns/predicates.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF on a harmonic-sum table would be O(n) per setup; for
        // generator use a rejection-free approximation is enough: sample u
        // and map through the power-law inverse.
        let u = self.next_f64().max(1e-12);
        if (theta - 1.0).abs() < 1e-9 {
            // theta == 1: inverse of log-CDF.
            let h = (n as f64).ln();
            let r = (u * h).exp() - 1.0;
            (r as usize).min(n - 1)
        } else {
            let one_minus = 1.0 - theta;
            let h = ((n as f64).powf(one_minus) - 1.0) / one_minus;
            let r = (1.0 + u * h * one_minus).powf(1.0 / one_minus) - 1.0;
            (r as usize).min(n - 1)
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator; handy for fanning a seed out
    /// to per-node or per-table generators without correlation.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut r = DetRng::new(11);
        let n = 1000;
        let mut rank0 = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let v = r.zipf(n, 0.99);
            assert!(v < n);
            if v == 0 {
                rank0 += 1;
            }
        }
        // Rank 0 must be far more popular than uniform (1/1000).
        assert!(rank0 as f64 / trials as f64 > 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::new(1234);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
