//! Fast, non-cryptographic hashing for internal hash tables.
//!
//! Feisu's hash joins, aggregation tables and index catalogs hash millions
//! of short keys. SipHash (std's default) is unnecessarily slow for this
//! internal, non-adversarial use, so we ship an FxHash-style multiply-xor
//! hasher (the same construction rustc uses) without pulling an extra
//! dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: word-at-a-time multiply-rotate mixing.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Fold in the length so "ab\0" and "ab" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the fast internal hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast internal hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hashes one value with the internal hasher; used for partitioning and
/// bloom-filter probes where a standalone u64 is needed.
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Derives `k` bloom-filter probe positions from a single 64-bit hash using
/// the Kirsch–Mitzenmacher double-hashing trick.
pub fn bloom_probes(hash: u64, k: usize, m: usize) -> impl Iterator<Item = usize> {
    let h1 = hash as u32 as u64;
    let h2 = (hash >> 32) | 1; // odd so all slots reachable
    (0..k as u64).map(move |i| ((h1.wrapping_add(i.wrapping_mul(h2))) % m as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
        assert_eq!(hash_one(&12345u64), hash_one(&12345u64));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_one(&"hello"), hash_one(&"hellp"));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn length_extension_distinguished() {
        // Trailing zero bytes must not collide with the shorter string.
        assert_ne!(hash_one(&b"ab".as_slice()), hash_one(&b"ab\0".as_slice()));
    }

    #[test]
    fn fxmap_works() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn bloom_probes_in_range_and_spread() {
        let probes: Vec<usize> = bloom_probes(hash_one(&"key"), 7, 1024).collect();
        assert_eq!(probes.len(), 7);
        assert!(probes.iter().all(|&p| p < 1024));
        let distinct: std::collections::HashSet<_> = probes.iter().collect();
        assert!(
            distinct.len() >= 5,
            "probes should mostly differ: {probes:?}"
        );
    }
}
