//! Workspace-wide error type.
//!
//! Feisu spans many subsystems (SQL front end, storage domains, the
//! scheduler, index management). A single error enum keeps cross-crate
//! signatures simple while still carrying enough structure for callers to
//! branch on the failure class (e.g. the entry guard rejecting a query vs.
//! a storage domain being unavailable).

use std::fmt;

/// Convenience alias used across all Feisu crates.
pub type Result<T> = std::result::Result<T, FeisuError>;

/// The unified error type for all Feisu subsystems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeisuError {
    /// SQL text failed to lex or parse. Carries position info in the message.
    Parse(String),
    /// The query parsed but referenced unknown tables/columns or was
    /// otherwise semantically invalid.
    Analysis(String),
    /// Query planning or optimization failed.
    Plan(String),
    /// A runtime error during operator execution (type mismatch at runtime,
    /// overflow, …).
    Execution(String),
    /// A storage domain rejected or failed an operation.
    Storage(String),
    /// Path routing could not resolve a storage domain for a path prefix.
    UnknownDomain(String),
    /// Authentication failed (bad or expired credential).
    Unauthenticated(String),
    /// Authenticated but not allowed (missing grant, quota exceeded,
    /// capability check failed by the entry guard).
    PermissionDenied(String),
    /// A cluster node was unavailable (crashed, heartbeat lost).
    NodeUnavailable(String),
    /// The job was abandoned because its response-time limit elapsed before
    /// the configured processed-data ratio was reached.
    Deadline(String),
    /// Index storage/decoding problems.
    Index(String),
    /// Corrupt or unsupported on-disk data (bad magic, truncated block…).
    Corrupt(String),
    /// Invalid configuration supplied by the embedder.
    Config(String),
    /// Scheduling failed (no candidate workers, resource agreement refused).
    Scheduling(String),
    /// Internal invariant violation; indicates a Feisu bug.
    Internal(String),
}

impl FeisuError {
    /// Short machine-friendly class name, handy for metrics and tests.
    pub fn class(&self) -> &'static str {
        match self {
            FeisuError::Parse(_) => "parse",
            FeisuError::Analysis(_) => "analysis",
            FeisuError::Plan(_) => "plan",
            FeisuError::Execution(_) => "execution",
            FeisuError::Storage(_) => "storage",
            FeisuError::UnknownDomain(_) => "unknown_domain",
            FeisuError::Unauthenticated(_) => "unauthenticated",
            FeisuError::PermissionDenied(_) => "permission_denied",
            FeisuError::NodeUnavailable(_) => "node_unavailable",
            FeisuError::Deadline(_) => "deadline",
            FeisuError::Index(_) => "index",
            FeisuError::Corrupt(_) => "corrupt",
            FeisuError::Config(_) => "config",
            FeisuError::Scheduling(_) => "scheduling",
            FeisuError::Internal(_) => "internal",
        }
    }

    /// Whether the failure is transient and a retry (possibly on a backup
    /// task) could succeed. The job scheduler uses this to decide between
    /// re-dispatching a task and failing the whole job.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FeisuError::NodeUnavailable(_) | FeisuError::Storage(_) | FeisuError::Scheduling(_)
        )
    }
}

impl fmt::Display for FeisuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (class, msg) = match self {
            FeisuError::Parse(m) => ("parse error", m),
            FeisuError::Analysis(m) => ("analysis error", m),
            FeisuError::Plan(m) => ("plan error", m),
            FeisuError::Execution(m) => ("execution error", m),
            FeisuError::Storage(m) => ("storage error", m),
            FeisuError::UnknownDomain(m) => ("unknown storage domain", m),
            FeisuError::Unauthenticated(m) => ("unauthenticated", m),
            FeisuError::PermissionDenied(m) => ("permission denied", m),
            FeisuError::NodeUnavailable(m) => ("node unavailable", m),
            FeisuError::Deadline(m) => ("deadline exceeded", m),
            FeisuError::Index(m) => ("index error", m),
            FeisuError::Corrupt(m) => ("corrupt data", m),
            FeisuError::Config(m) => ("config error", m),
            FeisuError::Scheduling(m) => ("scheduling error", m),
            FeisuError::Internal(m) => ("internal error", m),
        };
        write!(f, "{class}: {msg}")
    }
}

impl std::error::Error for FeisuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class_and_message() {
        let e = FeisuError::Parse("unexpected token `FROM` at offset 3".into());
        let s = e.to_string();
        assert!(s.contains("parse error"));
        assert!(s.contains("offset 3"));
    }

    #[test]
    fn retryable_classification() {
        assert!(FeisuError::NodeUnavailable("n1".into()).is_retryable());
        assert!(FeisuError::Storage("io".into()).is_retryable());
        assert!(!FeisuError::Parse("x".into()).is_retryable());
        assert!(!FeisuError::PermissionDenied("x".into()).is_retryable());
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(FeisuError::Deadline("t".into()).class(), "deadline");
        assert_eq!(FeisuError::Internal("t".into()).class(), "internal");
    }
}
