//! Byte-size and simulated-time units.
//!
//! All of Feisu's performance accounting runs on a *simulated* clock (see
//! `feisu-cluster::simclock`): costs are expressed in nanoseconds of
//! simulated time, which keeps every benchmark deterministic and
//! independent of the host machine. These units are plain integers with
//! human-friendly constructors and formatting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes. Used for I/O accounting and cache budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    pub const ZERO: ByteSize = ByteSize(0);

    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction, used by cache budget accounting.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2} GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2} MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2} KiB", b as f64 / (1u64 << 10) as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn nanos(n: u64) -> Self {
        SimDuration(n)
    }
    pub const fn micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }
    pub const fn millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }
    pub const fn secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }
    pub const fn minutes(n: u64) -> Self {
        SimDuration(n * 60 * 1_000_000_000)
    }
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3600 * 1_000_000_000)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 60 * 1_000_000_000 {
            write!(f, "{:.2} min", n as f64 / 60e9)
        } else if n >= 1_000_000_000 {
            write!(f, "{:.3} s", n as f64 / 1e9)
        } else if n >= 1_000_000 {
            write!(f, "{:.3} ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3} us", n as f64 / 1e3)
        } else {
            write!(f, "{n} ns")
        }
    }
}

/// A point on the simulated timeline, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(pub u64);

impl SimInstant {
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Elapsed time from `earlier` to `self` (saturating at zero).
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesize_constructors_and_display() {
        assert_eq!(ByteSize::kib(2).as_u64(), 2048);
        assert_eq!(ByteSize::mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
        assert_eq!(ByteSize::bytes(5).to_string(), "5 B");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00 MiB");
    }

    #[test]
    fn bytesize_arithmetic() {
        let a = ByteSize::kib(1) + ByteSize::kib(1);
        assert_eq!(a, ByteSize::kib(2));
        assert_eq!(
            ByteSize::kib(1).saturating_sub(ByteSize::mib(1)),
            ByteSize::ZERO
        );
        let total: ByteSize = [ByteSize(1), ByteSize(2), ByteSize(3)].into_iter().sum();
        assert_eq!(total, ByteSize(6));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::hours(72), SimDuration::minutes(72 * 60));
        assert_eq!(SimDuration::millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::nanos(12).to_string(), "12 ns");
        assert_eq!(SimDuration::micros(2).to_string(), "2.000 us");
        assert_eq!(SimDuration::millis(2).to_string(), "2.000 ms");
        assert_eq!(SimDuration::secs(2).to_string(), "2.000 s");
        assert_eq!(SimDuration::minutes(2).to_string(), "2.00 min");
    }

    #[test]
    fn instant_since_saturates() {
        let a = SimInstant(100);
        let b = SimInstant(40);
        assert_eq!(a.since(b), SimDuration(60));
        assert_eq!(b.since(a), SimDuration::ZERO);
        assert_eq!(b + SimDuration(10), SimInstant(50));
    }
}
