//! Lightweight, compression-friendly column encodings (paper §III-A).
//!
//! Feisu's block writer picks one of these per column chunk based on the
//! data's shape; all of them are implemented from scratch:
//!
//! * [`varint`] — LEB128 variable-length unsigned integers, the base layer
//!   every other codec writes its lengths and values with;
//! * [`zigzag`] — signed→unsigned mapping so small negatives stay small;
//! * [`delta`] — delta + zigzag + varint for sorted/clustered integers
//!   (timestamps, ids);
//! * [`rle`] — run-length encoding for low-cardinality or constant runs;
//! * [`bitpack`] — fixed-width bit packing for small-domain integers;
//! * [`dict`] — dictionary encoding for repetitive strings (URLs, query
//!   keywords).

use feisu_common::{FeisuError, Result};

/// LEB128 unsigned varints.
pub mod varint {
    use super::*;

    /// Appends `v` to `out` in LEB128.
    pub fn encode(mut v: u64, out: &mut Vec<u8>) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Decodes one varint from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *buf
                .get(*pos)
                .ok_or_else(|| FeisuError::Corrupt("varint: unexpected end of buffer".into()))?;
            *pos += 1;
            if shift >= 64 {
                return Err(FeisuError::Corrupt("varint: overflow (>10 bytes)".into()));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }
}

/// Zigzag mapping for signed integers.
pub mod zigzag {
    #[inline]
    pub fn encode(v: i64) -> u64 {
        ((v << 1) ^ (v >> 63)) as u64
    }

    #[inline]
    pub fn decode(v: u64) -> i64 {
        ((v >> 1) as i64) ^ -((v & 1) as i64)
    }
}

/// Delta + zigzag + varint codec for i64 sequences.
pub mod delta {
    use super::*;

    /// Encodes the sequence as first value + zigzag deltas.
    pub fn encode(values: &[i64], out: &mut Vec<u8>) {
        varint::encode(values.len() as u64, out);
        let mut prev = 0i64;
        for &v in values {
            varint::encode(zigzag::encode(v.wrapping_sub(prev)), out);
            prev = v;
        }
    }

    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Vec<i64>> {
        let n = varint::decode(buf, pos)? as usize;
        // Each value takes at least 1 byte; a length beyond the remaining
        // buffer is corruption, not an allocation request.
        if n > buf.len().saturating_sub(*pos) {
            return Err(FeisuError::Corrupt("delta: implausible length".into()));
        }
        let mut values = Vec::with_capacity(n);
        let mut prev = 0i64;
        for _ in 0..n {
            let d = zigzag::decode(varint::decode(buf, pos)?);
            prev = prev.wrapping_add(d);
            values.push(prev);
        }
        Ok(values)
    }
}

/// Run-length encoding over i64 values.
pub mod rle {
    use super::*;

    /// Encodes as a list of (run-length, value) pairs.
    pub fn encode(values: &[i64], out: &mut Vec<u8>) {
        // Count runs first so the decoder can preallocate.
        let mut runs = 0usize;
        let mut i = 0;
        while i < values.len() {
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            runs += 1;
            i = j;
        }
        varint::encode(values.len() as u64, out);
        varint::encode(runs as u64, out);
        let mut i = 0;
        while i < values.len() {
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            varint::encode((j - i) as u64, out);
            varint::encode(zigzag::encode(values[i]), out);
            i = j;
        }
    }

    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Vec<i64>> {
        let total = varint::decode(buf, pos)? as usize;
        let runs = varint::decode(buf, pos)? as usize;
        let mut values = Vec::with_capacity(total.min(1 << 24));
        for _ in 0..runs {
            let len = varint::decode(buf, pos)? as usize;
            let v = zigzag::decode(varint::decode(buf, pos)?);
            if values.len() + len > total {
                return Err(FeisuError::Corrupt(
                    "rle: runs exceed declared total".into(),
                ));
            }
            values.extend(std::iter::repeat_n(v, len));
        }
        if values.len() != total {
            return Err(FeisuError::Corrupt(format!(
                "rle: decoded {} values, expected {total}",
                values.len()
            )));
        }
        Ok(values)
    }

    /// Number of runs; the writer uses this to decide whether RLE pays off.
    pub fn run_count(values: &[i64]) -> usize {
        let mut runs = 0;
        let mut i = 0;
        while i < values.len() {
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            runs += 1;
            i = j;
        }
        runs
    }
}

/// Fixed-width bit packing for unsigned integers.
pub mod bitpack {
    use super::*;

    /// Minimum bits needed to represent `v`.
    pub fn bits_needed(v: u64) -> u32 {
        64 - v.leading_zeros().min(63)
    }

    /// Packs `values` using `width` bits each (width must fit all values).
    pub fn encode(values: &[u64], width: u32, out: &mut Vec<u8>) {
        debug_assert!((1..=64).contains(&width));
        varint::encode(values.len() as u64, out);
        out.push(width as u8);
        let mut acc: u128 = 0;
        let mut acc_bits: u32 = 0;
        for &v in values {
            debug_assert!(width == 64 || v < (1u64 << width));
            acc |= (v as u128) << acc_bits;
            acc_bits += width;
            while acc_bits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if acc_bits > 0 {
            out.push((acc & 0xff) as u8);
        }
    }

    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>> {
        let n = varint::decode(buf, pos)? as usize;
        let width = *buf
            .get(*pos)
            .ok_or_else(|| FeisuError::Corrupt("bitpack: missing width".into()))?
            as u32;
        *pos += 1;
        if width == 0 || width > 64 {
            return Err(FeisuError::Corrupt(format!("bitpack: bad width {width}")));
        }
        let needed_bytes = (n as u64 * width as u64).div_ceil(8) as usize;
        if buf.len() - *pos < needed_bytes {
            return Err(FeisuError::Corrupt("bitpack: truncated payload".into()));
        }
        let mut values = Vec::with_capacity(n);
        let mut acc: u128 = 0;
        let mut acc_bits: u32 = 0;
        let mask: u128 = if width == 64 {
            u64::MAX as u128
        } else {
            (1u128 << width) - 1
        };
        for _ in 0..n {
            while acc_bits < width {
                acc |= (buf[*pos] as u128) << acc_bits;
                *pos += 1;
                acc_bits += 8;
            }
            values.push((acc & mask) as u64);
            acc >>= width;
            acc_bits -= width;
        }
        Ok(values)
    }
}

/// Dictionary encoding for strings.
pub mod dict {
    use super::*;
    use feisu_common::hash::FxHashMap;

    /// Encodes strings as a deduplicated dictionary plus bit-packed codes.
    pub fn encode(values: &[&str], out: &mut Vec<u8>) {
        let mut dict: Vec<&str> = Vec::new();
        let mut lookup: FxHashMap<&str, u64> = FxHashMap::default();
        let mut codes: Vec<u64> = Vec::with_capacity(values.len());
        for &s in values {
            let code = *lookup.entry(s).or_insert_with(|| {
                dict.push(s);
                (dict.len() - 1) as u64
            });
            codes.push(code);
        }
        varint::encode(dict.len() as u64, out);
        for s in &dict {
            varint::encode(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        if codes.is_empty() {
            // Match bitpack's framing: zero count, then a width byte.
            varint::encode(0, out);
            out.push(1);
        } else {
            let width = bitpack::bits_needed(dict.len().saturating_sub(1) as u64).max(1);
            bitpack::encode(&codes, width, out);
        }
    }

    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Vec<String>> {
        let dict_len = varint::decode(buf, pos)? as usize;
        let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
        for _ in 0..dict_len {
            let len = varint::decode(buf, pos)? as usize;
            let end = pos
                .checked_add(len)
                .ok_or_else(|| FeisuError::Corrupt("dict: length overflow".into()))?;
            if end > buf.len() {
                return Err(FeisuError::Corrupt("dict: truncated string".into()));
            }
            let s = std::str::from_utf8(&buf[*pos..end])
                .map_err(|_| FeisuError::Corrupt("dict: invalid utf8".into()))?;
            dict.push(s.to_string());
            *pos = end;
        }
        let codes = bitpack::decode(buf, pos)?;
        let mut values = Vec::with_capacity(codes.len());
        for code in codes {
            let s = dict
                .get(code as usize)
                .ok_or_else(|| FeisuError::Corrupt("dict: code out of range".into()))?;
            values.push(s.clone());
        }
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            varint::encode(v, &mut buf);
            let mut pos = 0;
            assert_eq!(varint::decode(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        varint::encode(u64::MAX, &mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(varint::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn zigzag_maps_small_negatives_small() {
        assert_eq!(zigzag::encode(0), 0);
        assert_eq!(zigzag::encode(-1), 1);
        assert_eq!(zigzag::encode(1), 2);
        assert_eq!(zigzag::encode(-2), 3);
        for v in [-5i64, 0, 7, i64::MIN, i64::MAX] {
            assert_eq!(zigzag::decode(zigzag::encode(v)), v);
        }
    }

    #[test]
    fn delta_roundtrip_sorted_and_random() {
        let sorted: Vec<i64> = (0..1000).map(|i| i * 3 + 100).collect();
        let mut buf = Vec::new();
        delta::encode(&sorted, &mut buf);
        // Sorted data should compress far below 8 bytes/value.
        assert!(buf.len() < sorted.len() * 2 + 16);
        let mut pos = 0;
        assert_eq!(delta::decode(&buf, &mut pos).unwrap(), sorted);

        let random = vec![i64::MIN, i64::MAX, 0, -17, 42];
        let mut buf = Vec::new();
        delta::encode(&random, &mut buf);
        let mut pos = 0;
        assert_eq!(delta::decode(&buf, &mut pos).unwrap(), random);
    }

    #[test]
    fn rle_roundtrip_and_run_count() {
        let values = vec![7i64, 7, 7, 1, 1, 9, 9, 9, 9];
        assert_eq!(rle::run_count(&values), 3);
        let mut buf = Vec::new();
        rle::encode(&values, &mut buf);
        let mut pos = 0;
        assert_eq!(rle::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn rle_empty() {
        let mut buf = Vec::new();
        rle::encode(&[], &mut buf);
        let mut pos = 0;
        assert_eq!(rle::decode(&buf, &mut pos).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn rle_compresses_constant_column() {
        let values = vec![5i64; 10_000];
        let mut buf = Vec::new();
        rle::encode(&values, &mut buf);
        assert!(
            buf.len() < 16,
            "constant column should encode tiny: {}",
            buf.len()
        );
    }

    #[test]
    fn bitpack_roundtrip_various_widths() {
        for width in [1u32, 3, 7, 8, 13, 32, 64] {
            let max = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let values: Vec<u64> = (0..257)
                .map(|i| (i * 2654435761u64) % (max.max(1)))
                .collect();
            let mut buf = Vec::new();
            bitpack::encode(&values, width, &mut buf);
            let mut pos = 0;
            assert_eq!(
                bitpack::decode(&buf, &mut pos).unwrap(),
                values,
                "width {width}"
            );
        }
    }

    #[test]
    fn bitpack_bits_needed() {
        assert_eq!(bitpack::bits_needed(0), 1);
        assert_eq!(bitpack::bits_needed(1), 1);
        assert_eq!(bitpack::bits_needed(2), 2);
        assert_eq!(bitpack::bits_needed(255), 8);
        assert_eq!(bitpack::bits_needed(256), 9);
    }

    #[test]
    fn bitpack_rejects_truncation() {
        let mut buf = Vec::new();
        bitpack::encode(&[1, 2, 3, 4, 5], 3, &mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(bitpack::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn dict_roundtrip_and_dedup() {
        let values = ["url_a", "url_b", "url_a", "url_a", "url_c", "url_b"];
        let mut buf = Vec::new();
        dict::encode(&values, &mut buf);
        let mut pos = 0;
        let decoded = dict::decode(&buf, &mut pos).unwrap();
        assert_eq!(
            decoded,
            values.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
        // Dictionary stores each distinct string once: encoding 6 strings
        // with 3 distinct values must be smaller than raw concatenation.
        let raw: usize = values.iter().map(|s| s.len() + 1).sum();
        assert!(buf.len() < raw);
    }

    #[test]
    fn dict_empty() {
        let mut buf = Vec::new();
        dict::encode(&[], &mut buf);
        let mut pos = 0;
        assert_eq!(dict::decode(&buf, &mut pos).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn dict_rejects_bad_code() {
        // Hand-craft: dictionary of 1 entry, then codes referencing entry 5.
        let mut buf = Vec::new();
        varint::encode(1, &mut buf); // dict len
        varint::encode(1, &mut buf); // strlen
        buf.push(b'x');
        bitpack::encode(&[5], 3, &mut buf);
        let mut pos = 0;
        assert!(dict::decode(&buf, &mut pos).is_err());
    }
}
