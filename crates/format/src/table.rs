//! Table and partition metadata.
//!
//! Feisu "organizes data sets into partitions using a compression-friendly
//! columnar format" (§III-A). A [`TableDesc`] names a table, fixes its
//! schema, and lists its [`PartitionDesc`]s; each partition lists the
//! blocks it is made of together with the storage path each block lives at
//! (the common-storage-layer path carrying the domain prefix, §III-C) and
//! zone statistics for block pruning.

use crate::schema::Schema;
use crate::value::Value;
use feisu_common::{BlockId, ByteSize};

/// Zone info for one column of one block, kept in the catalog so the
/// planner can prune blocks without touching storage.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockZone {
    pub column: String,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: usize,
}

/// Catalog entry describing one stored block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDesc {
    pub id: BlockId,
    /// Full path with storage-domain prefix, e.g. `/hdfs/logs/t1/p0/b17`.
    pub path: String,
    pub rows: usize,
    /// Serialized (compressed) size, used for I/O cost accounting.
    pub stored_size: ByteSize,
    /// Uncompressed size.
    pub raw_size: ByteSize,
    pub zones: Vec<BlockZone>,
}

impl BlockDesc {
    /// Zone entry for a named column.
    pub fn zone(&self, column: &str) -> Option<&BlockZone> {
        self.zones.iter().find(|z| z.column == column)
    }
}

/// One horizontal partition of a table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionDesc {
    pub name: String,
    pub blocks: Vec<BlockDesc>,
}

impl PartitionDesc {
    pub fn rows(&self) -> usize {
        self.blocks.iter().map(|b| b.rows).sum()
    }

    pub fn stored_size(&self) -> ByteSize {
        self.blocks.iter().map(|b| b.stored_size).sum()
    }
}

/// Catalog entry for a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDesc {
    pub name: String,
    pub schema: Schema,
    pub partitions: Vec<PartitionDesc>,
}

impl TableDesc {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableDesc {
            name: name.into(),
            schema,
            partitions: Vec::new(),
        }
    }

    pub fn rows(&self) -> usize {
        self.partitions.iter().map(|p| p.rows()).sum()
    }

    pub fn stored_size(&self) -> ByteSize {
        self.partitions.iter().map(|p| p.stored_size()).sum()
    }

    /// Iterates every block descriptor in partition order.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockDesc> {
        self.partitions.iter().flat_map(|p| p.blocks.iter())
    }

    pub fn block_count(&self) -> usize {
        self.partitions.iter().map(|p| p.blocks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn table() -> TableDesc {
        let schema = Schema::new(vec![Field::new("c1", DataType::Int64, false)]);
        let mut t = TableDesc::new("t1", schema);
        t.partitions.push(PartitionDesc {
            name: "p0".into(),
            blocks: vec![
                BlockDesc {
                    id: BlockId(0),
                    path: "/hdfs/t1/p0/b0".into(),
                    rows: 100,
                    stored_size: ByteSize::kib(10),
                    raw_size: ByteSize::kib(40),
                    zones: vec![BlockZone {
                        column: "c1".into(),
                        min: Some(Value::Int64(0)),
                        max: Some(Value::Int64(99)),
                        null_count: 0,
                    }],
                },
                BlockDesc {
                    id: BlockId(1),
                    path: "/hdfs/t1/p0/b1".into(),
                    rows: 50,
                    stored_size: ByteSize::kib(5),
                    raw_size: ByteSize::kib(20),
                    zones: vec![],
                },
            ],
        });
        t
    }

    #[test]
    fn aggregates_roll_up() {
        let t = table();
        assert_eq!(t.rows(), 150);
        assert_eq!(t.stored_size(), ByteSize::kib(15));
        assert_eq!(t.block_count(), 2);
        assert_eq!(t.blocks().count(), 2);
    }

    #[test]
    fn zone_lookup() {
        let t = table();
        let b0 = &t.partitions[0].blocks[0];
        assert_eq!(b0.zone("c1").unwrap().max, Some(Value::Int64(99)));
        assert!(b0.zone("missing").is_none());
        assert!(t.partitions[0].blocks[1].zone("c1").is_none());
    }
}
