//! Typed, nullable column vectors.
//!
//! A `Column` is the in-memory representation of one attribute over a run
//! of rows. Values are stored unboxed in type-specific vectors with a
//! separate validity (null) bitmap, so scans and predicate evaluation run
//! over contiguous memory.

use crate::value::{DataType, Value};

/// Validity bitmap: bit i set ⇔ row i is non-null.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
    null_count: usize,
}

impl Validity {
    pub fn new_all_valid(len: usize) -> Self {
        let words = len.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Validity {
            bits,
            len,
            null_count: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Validity {
            bits: Vec::with_capacity(cap.div_ceil(64)),
            len: 0,
            null_count: 0,
        }
    }

    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if valid {
            self.bits[word] |= 1u64 << (self.len % 64);
        } else {
            self.null_count += 1;
        }
        self.len += 1;
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Raw words, for serialization.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds from raw words (trailing bits beyond `len` are ignored).
    pub fn from_words(bits: Vec<u64>, len: usize) -> Self {
        let mut v = Validity {
            bits,
            len,
            null_count: 0,
        };
        v.bits.resize(len.div_ceil(64), 0);
        let mut nulls = 0;
        for i in 0..len {
            if !v.is_valid(i) {
                nulls += 1;
            }
        }
        v.null_count = nulls;
        v
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
}

/// One attribute over a run of rows: typed data plus a validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Validity,
}

impl Column {
    /// Builds a column from dynamic values; `data_type` governs storage.
    /// Nulls become default slots masked out by the validity bitmap.
    /// Returns `None` if any non-null value has the wrong type.
    pub fn from_values(data_type: DataType, values: &[Value]) -> Option<Column> {
        let mut validity = Validity::with_capacity(values.len());
        let data = match data_type {
            DataType::Bool => {
                let mut v = Vec::with_capacity(values.len());
                for val in values {
                    match val {
                        Value::Null => {
                            v.push(false);
                            validity.push(false);
                        }
                        Value::Bool(b) => {
                            v.push(*b);
                            validity.push(true);
                        }
                        _ => return None,
                    }
                }
                ColumnData::Bool(v)
            }
            DataType::Int64 => {
                let mut v = Vec::with_capacity(values.len());
                for val in values {
                    match val {
                        Value::Null => {
                            v.push(0);
                            validity.push(false);
                        }
                        Value::Int64(i) => {
                            v.push(*i);
                            validity.push(true);
                        }
                        _ => return None,
                    }
                }
                ColumnData::Int64(v)
            }
            DataType::Float64 => {
                let mut v = Vec::with_capacity(values.len());
                for val in values {
                    match val {
                        Value::Null => {
                            v.push(0.0);
                            validity.push(false);
                        }
                        Value::Float64(f) => {
                            v.push(*f);
                            validity.push(true);
                        }
                        Value::Int64(i) => {
                            // Implicit widening keeps generators ergonomic.
                            v.push(*i as f64);
                            validity.push(true);
                        }
                        _ => return None,
                    }
                }
                ColumnData::Float64(v)
            }
            DataType::Utf8 => {
                let mut v = Vec::with_capacity(values.len());
                for val in values {
                    match val {
                        Value::Null => {
                            v.push(String::new());
                            validity.push(false);
                        }
                        Value::Utf8(s) => {
                            v.push(s.clone());
                            validity.push(true);
                        }
                        _ => return None,
                    }
                }
                ColumnData::Utf8(v)
            }
        };
        Some(Column { data, validity })
    }

    pub fn from_i64(values: Vec<i64>) -> Column {
        let validity = Validity::new_all_valid(values.len());
        Column {
            data: ColumnData::Int64(values),
            validity,
        }
    }

    pub fn from_f64(values: Vec<f64>) -> Column {
        let validity = Validity::new_all_valid(values.len());
        Column {
            data: ColumnData::Float64(values),
            validity,
        }
    }

    pub fn from_bool(values: Vec<bool>) -> Column {
        let validity = Validity::new_all_valid(values.len());
        Column {
            data: ColumnData::Bool(values),
            validity,
        }
    }

    pub fn from_utf8(values: Vec<String>) -> Column {
        let validity = Validity::new_all_valid(values.len());
        Column {
            data: ColumnData::Utf8(values),
            validity,
        }
    }

    /// Builds with explicit validity (for decoders).
    pub fn new(data: ColumnData, validity: Validity) -> Column {
        debug_assert_eq!(data_len(&data), validity.len());
        Column { data, validity }
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    pub fn data_type(&self) -> DataType {
        match self.data {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
        }
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn null_count(&self) -> usize {
        self.validity.null_count()
    }

    /// Dynamically-typed view of row `i`.
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int64(v) => Value::Int64(v[i]),
            ColumnData::Float64(v) => Value::Float64(v[i]),
            ColumnData::Utf8(v) => Value::Utf8(v[i].clone()),
        }
    }

    /// Typed accessors for hot paths (panic on type mismatch — used only
    /// after planning has fixed the types).
    pub fn i64_slice(&self) -> &[i64] {
        match &self.data {
            ColumnData::Int64(v) => v,
            other => panic!("expected Int64 column, got {:?}", column_type(other)),
        }
    }

    pub fn f64_slice(&self) -> &[f64] {
        match &self.data {
            ColumnData::Float64(v) => v,
            other => panic!("expected Float64 column, got {:?}", column_type(other)),
        }
    }

    pub fn bool_slice(&self) -> &[bool] {
        match &self.data {
            ColumnData::Bool(v) => v,
            other => panic!("expected Bool column, got {:?}", column_type(other)),
        }
    }

    pub fn utf8_slice(&self) -> &[String] {
        match &self.data {
            ColumnData::Utf8(v) => v,
            other => panic!("expected Utf8 column, got {:?}", column_type(other)),
        }
    }

    /// Gathers the rows selected by `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let mut validity = Validity::with_capacity(indices.len());
        for &i in indices {
            validity.push(self.validity.is_valid(i));
        }
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i].clone()).collect())
            }
        };
        Column { data, validity }
    }

    /// Gathers the rows whose bit is set in `words` — a selection bitmap in
    /// word layout (bit `i % 64` of `words[i / 64]` selects row `i`). The
    /// word-at-a-time walk skips empty words and avoids materializing an
    /// index vector the way [`Column::take`] requires; set bits at or past
    /// the column length are ignored.
    pub fn filter_by_words(&self, words: &[u64]) -> Column {
        let n = self.len();
        let mut count = 0usize;
        for (wi, &w) in words.iter().enumerate() {
            let base = wi * 64;
            if base >= n {
                break;
            }
            let m = if n - base < 64 {
                w & ((1u64 << (n - base)) - 1)
            } else {
                w
            };
            count += m.count_ones() as usize;
        }
        let mut validity = Validity::with_capacity(count);
        let data = match &self.data {
            ColumnData::Bool(v) => {
                let mut out = Vec::with_capacity(count);
                for_each_set(words, n, |i| {
                    out.push(v[i]);
                    validity.push(self.validity.is_valid(i));
                });
                ColumnData::Bool(out)
            }
            ColumnData::Int64(v) => {
                let mut out = Vec::with_capacity(count);
                for_each_set(words, n, |i| {
                    out.push(v[i]);
                    validity.push(self.validity.is_valid(i));
                });
                ColumnData::Int64(out)
            }
            ColumnData::Float64(v) => {
                let mut out = Vec::with_capacity(count);
                for_each_set(words, n, |i| {
                    out.push(v[i]);
                    validity.push(self.validity.is_valid(i));
                });
                ColumnData::Float64(out)
            }
            ColumnData::Utf8(v) => {
                let mut out = Vec::with_capacity(count);
                for_each_set(words, n, |i| {
                    out.push(v[i].clone());
                    validity.push(self.validity.is_valid(i));
                });
                ColumnData::Utf8(out)
            }
        };
        Column { data, validity }
    }

    /// Appends another column of the same type.
    pub fn append(&mut self, other: &Column) {
        assert_eq!(self.data_type(), other.data_type(), "append type mismatch");
        for i in 0..other.len() {
            self.validity.push(other.validity.is_valid(i));
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(b),
            _ => unreachable!(),
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn footprint(&self) -> usize {
        let data = match &self.data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
        };
        data + self.validity.words().len() * 8
    }

    /// Min and max of non-null values (zone statistics). `None` when the
    /// column is all-null or empty.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in 0..self.len() {
            if !self.validity.is_valid(i) {
                continue;
            }
            let v = self.value(i);
            match &min {
                None => {
                    min = Some(v.clone());
                    max = Some(v);
                }
                Some(m) => {
                    if v.total_cmp(m) == std::cmp::Ordering::Less {
                        min = Some(v.clone());
                    }
                    if v.total_cmp(max.as_ref().unwrap()) == std::cmp::Ordering::Greater {
                        max = Some(v);
                    }
                }
            }
        }
        min.zip(max)
    }
}

/// Calls `f` for every set bit below `n`, word at a time.
#[inline]
fn for_each_set(words: &[u64], n: usize, mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let base = wi * 64;
        if base >= n {
            break;
        }
        let mut m = if n - base < 64 {
            w & ((1u64 << (n - base)) - 1)
        } else {
            w
        };
        while m != 0 {
            f(base + m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }
}

fn data_len(d: &ColumnData) -> usize {
    match d {
        ColumnData::Bool(v) => v.len(),
        ColumnData::Int64(v) => v.len(),
        ColumnData::Float64(v) => v.len(),
        ColumnData::Utf8(v) => v.len(),
    }
}

fn column_type(d: &ColumnData) -> DataType {
    match d {
        ColumnData::Bool(_) => DataType::Bool,
        ColumnData::Int64(_) => DataType::Int64,
        ColumnData::Float64(_) => DataType::Float64,
        ColumnData::Utf8(_) => DataType::Utf8,
    }
}

/// Incremental builder collecting dynamic values into a typed column.
#[derive(Debug)]
pub struct ColumnBuilder {
    data_type: DataType,
    values: Vec<Value>,
}

impl ColumnBuilder {
    pub fn new(data_type: DataType) -> Self {
        ColumnBuilder {
            data_type,
            values: Vec::new(),
        }
    }

    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Finishes the column; panics if a value had the wrong type (builder
    /// callers validate beforehand).
    pub fn finish(self) -> Column {
        Column::from_values(self.data_type, &self.values)
            .expect("ColumnBuilder received ill-typed value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_push_and_query() {
        let mut v = Validity::with_capacity(4);
        v.push(true);
        v.push(false);
        v.push(true);
        assert!(v.is_valid(0));
        assert!(!v.is_valid(1));
        assert!(v.is_valid(2));
        assert_eq!(v.null_count(), 1);
    }

    #[test]
    fn validity_all_valid_partial_word() {
        let v = Validity::new_all_valid(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.null_count(), 0);
        assert!(v.is_valid(69));
    }

    #[test]
    fn validity_words_roundtrip() {
        let mut v = Validity::with_capacity(0);
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        let rebuilt = Validity::from_words(v.words().to_vec(), v.len());
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn from_values_with_nulls() {
        let c = Column::from_values(
            DataType::Int64,
            &[Value::Int64(1), Value::Null, Value::Int64(3)],
        )
        .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Int64(1));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn from_values_type_mismatch() {
        assert!(Column::from_values(DataType::Int64, &[Value::Utf8("x".into())]).is_none());
        assert!(Column::from_values(DataType::Bool, &[Value::Int64(0)]).is_none());
    }

    #[test]
    fn int_widens_to_float() {
        let c = Column::from_values(DataType::Float64, &[Value::Int64(2)]).unwrap();
        assert_eq!(c.value(0), Value::Float64(2.0));
    }

    #[test]
    fn take_gathers_rows() {
        let c = Column::from_values(
            DataType::Utf8,
            &[
                Value::Utf8("a".into()),
                Value::Null,
                Value::Utf8("c".into()),
            ],
        )
        .unwrap();
        let t = c.take(&[2, 0, 1]);
        assert_eq!(t.value(0), Value::Utf8("c".into()));
        assert_eq!(t.value(1), Value::Utf8("a".into()));
        assert_eq!(t.value(2), Value::Null);
    }

    #[test]
    fn filter_by_words_matches_take() {
        let vals: Vec<Value> = (0..150)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Utf8(format!("row{i}"))
                }
            })
            .collect();
        let c = Column::from_values(DataType::Utf8, &vals).unwrap();
        // Select every third row via a word bitmap and via take().
        let mut words = vec![0u64; 150usize.div_ceil(64)];
        let mut indices = Vec::new();
        for i in (0..150).step_by(3) {
            words[i / 64] |= 1u64 << (i % 64);
            indices.push(i);
        }
        assert_eq!(c.filter_by_words(&words), c.take(&indices));
        // Set bits past the column length are ignored.
        words[2] |= 1u64 << 63;
        assert_eq!(c.filter_by_words(&words), c.take(&indices));
        // Empty selection.
        assert_eq!(c.filter_by_words(&[0, 0, 0]).len(), 0);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Column::from_i64(vec![1, 2]);
        let b = Column::from_values(DataType::Int64, &[Value::Null, Value::Int64(4)]).unwrap();
        a.append(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.value(2), Value::Null);
        assert_eq!(a.value(3), Value::Int64(4));
    }

    #[test]
    #[should_panic(expected = "append type mismatch")]
    fn append_type_mismatch_panics() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_bool(vec![true]);
        a.append(&b);
    }

    #[test]
    fn min_max_skips_nulls() {
        let c = Column::from_values(
            DataType::Int64,
            &[Value::Null, Value::Int64(5), Value::Int64(-3), Value::Null],
        )
        .unwrap();
        let (min, max) = c.min_max().unwrap();
        assert_eq!(min, Value::Int64(-3));
        assert_eq!(max, Value::Int64(5));
    }

    #[test]
    fn min_max_all_null_is_none() {
        let c = Column::from_values(DataType::Int64, &[Value::Null, Value::Null]).unwrap();
        assert!(c.min_max().is_none());
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = ColumnBuilder::new(DataType::Utf8);
        b.push(Value::Utf8("x".into()));
        b.push(Value::Null);
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert_eq!(c.data_type(), DataType::Utf8);
    }

    #[test]
    fn footprint_is_positive_and_scales() {
        let small = Column::from_i64(vec![1, 2, 3]).footprint();
        let large = Column::from_i64((0..1000).collect()).footprint();
        assert!(large > small * 100);
    }
}
