//! Block compression codecs.
//!
//! SmartIndex headers carry a `compress type` field (paper Fig. 6) and the
//! columnar format is described as "compression-friendly" (§III-A). Rather
//! than pull an external compression dependency, Feisu ships a small
//! LZ77-style byte codec (`Lz`) with a greedy hash-chain matcher, plus a
//! trivial passthrough (`None`) so callers can always decompress by codec
//! tag. The codec self-describes: the first byte of every compressed
//! payload is the [`Codec`] tag.

use feisu_common::{FeisuError, Result};

/// Available compression codecs, stored as the payload's first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Store bytes verbatim.
    None,
    /// From-scratch LZ77 with a 64 KiB window and hash-chain matching.
    Lz,
}

impl Codec {
    pub fn tag(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Lz => 1,
        }
    }

    pub fn from_tag(tag: u8) -> Result<Codec> {
        match tag {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Lz),
            other => Err(FeisuError::Corrupt(format!("unknown codec tag {other}"))),
        }
    }
}

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const HASH_BITS: usize = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `data` with the chosen codec. Output always starts with the
/// codec tag byte, followed by the uncompressed length (varint) and payload.
pub fn compress(codec: Codec, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.push(codec.tag());
    crate::encoding::varint::encode(data.len() as u64, &mut out);
    match codec {
        Codec::None => out.extend_from_slice(data),
        Codec::Lz => lz_compress(data, &mut out),
    }
    out
}

/// Decompresses a payload produced by [`compress`].
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    if buf.is_empty() {
        return Err(FeisuError::Corrupt("empty compressed payload".into()));
    }
    let codec = Codec::from_tag(buf[0])?;
    let mut pos = 1usize;
    let raw_len = crate::encoding::varint::decode(buf, &mut pos)? as usize;
    match codec {
        Codec::None => {
            let payload = &buf[pos..];
            if payload.len() != raw_len {
                return Err(FeisuError::Corrupt(format!(
                    "passthrough length mismatch: {} vs {raw_len}",
                    payload.len()
                )));
            }
            Ok(payload.to_vec())
        }
        Codec::Lz => lz_decompress(&buf[pos..], raw_len),
    }
}

/// Token stream: literal-run token = 0x00 len bytes…; match token = 0x01
/// len(varint) distance(varint).
fn lz_compress(data: &[u8], out: &mut Vec<u8>) {
    use crate::encoding::varint;

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().max(1)];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        if to > from {
            out.push(0x00);
            varint::encode((to - from) as u64, out);
            out.extend_from_slice(&data[from..to]);
        }
    };

    while i + MIN_MATCH <= data.len() {
        let h = hash4(data, i);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chain = 0;
        while cand != usize::MAX && i - cand <= WINDOW && chain < 32 {
            // Candidate positions share a 4-byte hash; verify actual match.
            let max_len = (data.len() - i).min(MAX_MATCH);
            let mut l = 0;
            while l < max_len && data[cand + l] == data[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - cand;
            }
            cand = prev[cand];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            flush_literals(out, literal_start, i, data);
            out.push(0x01);
            varint::encode(best_len as u64, out);
            varint::encode(best_dist as u64, out);
            // Insert all covered positions into the chain so later matches
            // can reference inside this one.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            let mut j = i;
            while j < end {
                let hj = hash4(data, j);
                prev[j] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
            literal_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals(out, literal_start, data.len(), data);
}

fn lz_decompress(buf: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    use crate::encoding::varint;

    // A match token occupies at least 3 bytes and emits at most MAX_MATCH,
    // so no valid payload expands beyond MAX_MATCH per input byte. A header
    // claiming more is corrupt; rejecting it here keeps a corrupt varint
    // from driving a huge up-front allocation.
    let max_plausible = buf.len().saturating_mul(MAX_MATCH);
    if raw_len > max_plausible {
        return Err(FeisuError::Corrupt(format!(
            "lz: claimed raw length {raw_len} exceeds plausible bound {max_plausible}"
        )));
    }
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < buf.len() {
        let tok = buf[pos];
        pos += 1;
        match tok {
            0x00 => {
                let len = varint::decode(buf, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .ok_or_else(|| FeisuError::Corrupt("lz: literal overflow".into()))?;
                if end > buf.len() {
                    return Err(FeisuError::Corrupt("lz: truncated literal run".into()));
                }
                out.extend_from_slice(&buf[pos..end]);
                pos = end;
            }
            0x01 => {
                let len = varint::decode(buf, &mut pos)? as usize;
                let dist = varint::decode(buf, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(FeisuError::Corrupt(format!(
                        "lz: bad match distance {dist} at output {}",
                        out.len()
                    )));
                }
                if out.len() + len > raw_len {
                    return Err(FeisuError::Corrupt("lz: match overruns raw length".into()));
                }
                // Overlapping copies are legal (dist < len repeats a motif),
                // so copy byte-wise from the back reference.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => {
                return Err(FeisuError::Corrupt(format!("lz: unknown token {other}")));
            }
        }
    }
    if out.len() != raw_len {
        return Err(FeisuError::Corrupt(format!(
            "lz: decompressed {} bytes, expected {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Picks a codec for a payload: small payloads are not worth compressing;
/// everything else tries LZ and keeps it only if it actually shrank.
pub fn compress_adaptive(data: &[u8]) -> Vec<u8> {
    if data.len() < 64 {
        return compress(Codec::None, data);
    }
    let lz = compress(Codec::Lz, data);
    if lz.len() < data.len() {
        lz
    } else {
        compress(Codec::None, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_roundtrip() {
        let data = b"hello feisu".to_vec();
        let c = compress(Codec::None, &data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip_repetitive() {
        let data: Vec<u8> = b"abcabcabcabcabcabcabcabcabcabc".repeat(100);
        let c = compress(Codec::Lz, &data);
        assert!(
            c.len() < data.len() / 5,
            "repetitive data should shrink a lot"
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip_incompressible() {
        // Pseudo-random bytes: must still round-trip even if bigger.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let c = compress(Codec::Lz, &data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip_empty_and_tiny() {
        for data in [b"".to_vec(), b"a".to_vec(), b"abc".to_vec()] {
            let c = compress(Codec::Lz, &data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn lz_overlapping_match() {
        // "aaaaa..." forces dist=1 matches with len > dist.
        let data = vec![b'a'; 1000];
        let c = compress(Codec::Lz, &data);
        assert!(c.len() < 32);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn adaptive_skips_small_or_random() {
        let small = compress_adaptive(b"tiny");
        assert_eq!(small[0], Codec::None.tag());
        let repetitive = compress_adaptive(&b"xyz".repeat(1000));
        assert_eq!(repetitive[0], Codec::Lz.tag());
    }

    #[test]
    fn corrupt_inputs_error_cleanly() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[99]).is_err());
        // Valid header claiming 100 raw bytes with no payload.
        let mut buf = vec![Codec::Lz.tag()];
        crate::encoding::varint::encode(100, &mut buf);
        assert!(decompress(&buf).is_err());
        // Match referencing before start of output.
        let mut buf = vec![Codec::Lz.tag()];
        crate::encoding::varint::encode(10, &mut buf);
        buf.push(0x01);
        crate::encoding::varint::encode(4, &mut buf);
        crate::encoding::varint::encode(7, &mut buf);
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn truncated_literal_errors() {
        let data = b"0123456789".to_vec();
        let mut c = compress(Codec::None, &data);
        c.truncate(c.len() - 2);
        assert!(decompress(&c).is_err());
    }
}
