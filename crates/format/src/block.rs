//! Data blocks — the unit of storage, scheduling and SmartIndexing.
//!
//! A block holds a horizontal slice of one table partition in columnar
//! layout, together with per-column zone statistics (min/max/null-count)
//! used by the optimizer and the SmartIndex header. Blocks serialize to a
//! self-describing binary format: magic, version, schema, then one encoded
//! chunk per column, with the whole payload run through the adaptive
//! compressor.

use crate::column::{Column, ColumnData, Validity};
use crate::compress;
use crate::encoding::{bitpack, delta, dict, rle, varint};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use feisu_common::{BlockId, FeisuError, Result};

/// Magic bytes opening every serialized block.
pub const BLOCK_MAGIC: &[u8; 8] = b"FEISUBLK";
/// Current on-disk format version.
pub const BLOCK_VERSION: u8 = 1;

/// Zone statistics for one column of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: usize,
}

/// A columnar slice of a table partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    id: BlockId,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Block {
    /// Builds a block; all columns must share the same length and match the
    /// schema's types.
    pub fn new(id: BlockId, schema: Schema, columns: Vec<Column>) -> Result<Block> {
        if schema.len() != columns.len() {
            return Err(FeisuError::Internal(format!(
                "block {id}: schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.len() != rows {
                return Err(FeisuError::Internal(format!(
                    "block {id}: ragged columns ({} vs {rows} rows)",
                    c.len()
                )));
            }
            if c.data_type() != f.data_type {
                return Err(FeisuError::Internal(format!(
                    "block {id}: column `{}` is {} but schema says {}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(Block {
            id,
            schema,
            columns,
            rows,
        })
    }

    pub fn id(&self) -> BlockId {
        self.id
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Zone statistics for column `i`.
    pub fn stats(&self, i: usize) -> ColumnStats {
        let c = &self.columns[i];
        let (min, max) = match c.min_max() {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };
        ColumnStats {
            min,
            max,
            null_count: c.null_count(),
        }
    }

    /// Approximate uncompressed in-memory footprint.
    pub fn footprint(&self) -> usize {
        self.columns.iter().map(|c| c.footprint()).sum()
    }

    /// Serializes the block to the Feisu binary format.
    pub fn serialize(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.footprint() / 2 + 64);
        varint::encode(self.rows as u64, &mut body);
        varint::encode(self.schema.len() as u64, &mut body);
        for f in self.schema.fields() {
            varint::encode(f.name.len() as u64, &mut body);
            body.extend_from_slice(f.name.as_bytes());
            body.push(type_tag(f.data_type));
            body.push(f.nullable as u8);
        }
        for c in &self.columns {
            encode_column(c, &mut body);
        }
        let compressed = compress::compress_adaptive(&body);
        let mut out = Vec::with_capacity(compressed.len() + 16);
        out.extend_from_slice(BLOCK_MAGIC);
        out.push(BLOCK_VERSION);
        varint::encode(self.id.raw(), &mut out);
        out.extend_from_slice(&compressed);
        out
    }

    /// Parses a serialized block, validating magic and version.
    pub fn deserialize(buf: &[u8]) -> Result<Block> {
        if buf.len() < 9 || &buf[..8] != BLOCK_MAGIC {
            return Err(FeisuError::Corrupt("bad block magic".into()));
        }
        if buf[8] != BLOCK_VERSION {
            return Err(FeisuError::Corrupt(format!(
                "unsupported block version {}",
                buf[8]
            )));
        }
        let mut pos = 9usize;
        let id = BlockId(varint::decode(buf, &mut pos)?);
        let body = compress::decompress(&buf[pos..])?;
        let mut pos = 0usize;
        let rows = varint::decode(&body, &mut pos)? as usize;
        let nfields = varint::decode(&body, &mut pos)? as usize;
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            let name_len = varint::decode(&body, &mut pos)? as usize;
            let end = pos + name_len;
            if end > body.len() {
                return Err(FeisuError::Corrupt("truncated field name".into()));
            }
            let name = std::str::from_utf8(&body[pos..end])
                .map_err(|_| FeisuError::Corrupt("field name not utf8".into()))?
                .to_string();
            pos = end;
            let dt = type_from_tag(
                *body
                    .get(pos)
                    .ok_or_else(|| FeisuError::Corrupt("missing type tag".into()))?,
            )?;
            let nullable = *body
                .get(pos + 1)
                .ok_or_else(|| FeisuError::Corrupt("missing nullable flag".into()))?
                != 0;
            pos += 2;
            fields.push(Field::new(name, dt, nullable));
        }
        let schema = Schema::new(fields);
        let mut columns = Vec::with_capacity(nfields);
        for f in schema.fields() {
            columns.push(decode_column(f.data_type, rows, &body, &mut pos)?);
        }
        Block::new(id, schema, columns)
    }
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Utf8 => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int64),
        2 => Ok(DataType::Float64),
        3 => Ok(DataType::Utf8),
        other => Err(FeisuError::Corrupt(format!("unknown type tag {other}"))),
    }
}

/// Per-column encoding tags.
const ENC_RLE: u8 = 0;
const ENC_DELTA: u8 = 1;
const ENC_FLOAT_RAW: u8 = 2;
const ENC_BOOL_PACK: u8 = 3;
const ENC_DICT: u8 = 4;

fn encode_column(c: &Column, out: &mut Vec<u8>) {
    // Validity first (word-aligned bitmap).
    let words = c.validity().words();
    varint::encode(words.len() as u64, out);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    match c.data() {
        ColumnData::Int64(v) => {
            // RLE wins when runs are long; delta otherwise.
            if rle::run_count(v) * 4 <= v.len().max(1) {
                out.push(ENC_RLE);
                rle::encode(v, out);
            } else {
                out.push(ENC_DELTA);
                delta::encode(v, out);
            }
        }
        ColumnData::Float64(v) => {
            out.push(ENC_FLOAT_RAW);
            varint::encode(v.len() as u64, out);
            for f in v {
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        }
        ColumnData::Bool(v) => {
            out.push(ENC_BOOL_PACK);
            if v.is_empty() {
                varint::encode(0, out);
                out.push(1);
            } else {
                let bits: Vec<u64> = v.iter().map(|&b| b as u64).collect();
                bitpack::encode(&bits, 1, out);
            }
        }
        ColumnData::Utf8(v) => {
            out.push(ENC_DICT);
            let refs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
            dict::encode(&refs, out);
        }
    }
}

fn decode_column(dt: DataType, rows: usize, buf: &[u8], pos: &mut usize) -> Result<Column> {
    let nwords = varint::decode(buf, pos)? as usize;
    // Corruption-controlled count: checked multiply, or the bounds check
    // below is defeated by overflow wraparound on 32-bit targets.
    let nbytes = nwords
        .checked_mul(8)
        .ok_or_else(|| FeisuError::Corrupt("validity word count overflow".into()))?;
    if buf.len().saturating_sub(*pos) < nbytes {
        return Err(FeisuError::Corrupt("truncated validity bitmap".into()));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
        *pos += 8;
    }
    let validity = Validity::from_words(words, rows);
    let enc = *buf
        .get(*pos)
        .ok_or_else(|| FeisuError::Corrupt("missing column encoding tag".into()))?;
    *pos += 1;
    let data = match (dt, enc) {
        (DataType::Int64, ENC_RLE) => ColumnData::Int64(rle::decode(buf, pos)?),
        (DataType::Int64, ENC_DELTA) => ColumnData::Int64(delta::decode(buf, pos)?),
        (DataType::Float64, ENC_FLOAT_RAW) => {
            let n = varint::decode(buf, pos)? as usize;
            let nbytes = n
                .checked_mul(8)
                .ok_or_else(|| FeisuError::Corrupt("float count overflow".into()))?;
            if buf.len().saturating_sub(*pos) < nbytes {
                return Err(FeisuError::Corrupt("truncated float column".into()));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(u64::from_le_bytes(
                    buf[*pos..*pos + 8].try_into().unwrap(),
                )));
                *pos += 8;
            }
            ColumnData::Float64(v)
        }
        (DataType::Bool, ENC_BOOL_PACK) => {
            let bits = bitpack::decode(buf, pos)?;
            ColumnData::Bool(bits.into_iter().map(|b| b != 0).collect())
        }
        (DataType::Utf8, ENC_DICT) => ColumnData::Utf8(dict::decode(buf, pos)?),
        (dt, enc) => {
            return Err(FeisuError::Corrupt(format!(
                "encoding tag {enc} invalid for type {dt}"
            )))
        }
    };
    let len = match &data {
        ColumnData::Bool(v) => v.len(),
        ColumnData::Int64(v) => v.len(),
        ColumnData::Float64(v) => v.len(),
        ColumnData::Utf8(v) => v.len(),
    };
    if len != rows {
        return Err(FeisuError::Corrupt(format!(
            "column decoded {len} rows, block declares {rows}"
        )));
    }
    Ok(Column::new(data, validity))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let schema = Schema::new(vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("clicks", DataType::Int64, true),
            Field::new("ctr", DataType::Float64, false),
            Field::new("spam", DataType::Bool, false),
        ]);
        let columns = vec![
            Column::from_utf8(
                (0..100)
                    .map(|i| format!("https://example.com/page/{}", i % 7))
                    .collect(),
            ),
            Column::from_values(
                DataType::Int64,
                &(0..100)
                    .map(|i| {
                        if i % 10 == 0 {
                            Value::Null
                        } else {
                            Value::Int64(i * 3)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            Column::from_f64((0..100).map(|i| i as f64 / 100.0).collect()),
            Column::from_bool((0..100).map(|i| i % 13 == 0).collect()),
        ];
        Block::new(BlockId(42), schema, columns).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]);
        // Wrong column count.
        assert!(Block::new(BlockId(0), schema.clone(), vec![]).is_err());
        // Wrong type.
        assert!(Block::new(
            BlockId(0),
            schema.clone(),
            vec![Column::from_bool(vec![true])]
        )
        .is_err());
        // Ragged lengths.
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Int64, false),
        ]);
        assert!(Block::new(
            BlockId(0),
            schema2,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![1, 2])]
        )
        .is_err());
    }

    #[test]
    fn serialize_roundtrip() {
        let b = sample_block();
        let bytes = b.serialize();
        let back = Block::deserialize(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.id(), BlockId(42));
        assert_eq!(back.rows(), 100);
    }

    #[test]
    fn serialized_form_compresses_repetitive_data() {
        let b = sample_block();
        let bytes = b.serialize();
        assert!(
            bytes.len() < b.footprint(),
            "serialized {} >= footprint {}",
            bytes.len(),
            b.footprint()
        );
    }

    #[test]
    fn empty_block_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let b = Block::new(BlockId(1), schema, vec![Column::from_i64(vec![])]).unwrap();
        let back = Block::deserialize(&b.serialize()).unwrap();
        assert_eq!(back.rows(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_block().serialize();
        bytes[0] = b'X';
        assert!(matches!(
            Block::deserialize(&bytes),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_block().serialize();
        bytes[8] = 99;
        assert!(Block::deserialize(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_block().serialize();
        for cut in [bytes.len() / 2, bytes.len() - 1, 10] {
            assert!(
                Block::deserialize(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn huge_validity_word_count_rejected_not_panicking() {
        // A block body whose first column claims u64::MAX validity words:
        // the byte-size multiply must be checked, not wrap past the
        // bounds check (or panic in debug builds).
        let mut body = Vec::new();
        varint::encode(4, &mut body); // rows
        varint::encode(1, &mut body); // one field
        varint::encode(1, &mut body); // name len
        body.extend_from_slice(b"x");
        body.push(type_tag(DataType::Int64));
        body.push(1); // nullable
        varint::encode(u64::MAX, &mut body); // validity word count
        let compressed = compress::compress_adaptive(&body);
        let mut buf = Vec::new();
        buf.extend_from_slice(BLOCK_MAGIC);
        buf.push(BLOCK_VERSION);
        varint::encode(42, &mut buf);
        buf.extend_from_slice(&compressed);
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn stats_reflect_column_contents() {
        let b = sample_block();
        let clicks = b.stats(1);
        assert_eq!(clicks.null_count, 10);
        assert_eq!(clicks.min, Some(Value::Int64(3)));
        assert_eq!(clicks.max, Some(Value::Int64(297)));
    }

    #[test]
    fn column_by_name() {
        let b = sample_block();
        assert!(b.column_by_name("ctr").is_some());
        assert!(b.column_by_name("missing").is_none());
    }
}
