//! Data blocks — the unit of storage, scheduling and SmartIndexing.
//!
//! A block holds a horizontal slice of one table partition in columnar
//! layout, together with per-column zone statistics (min/max/null-count)
//! used by the optimizer and the SmartIndex header. Blocks serialize to a
//! self-describing binary format built for late materialization: magic,
//! version, a compressed schema header, then one *independently* compressed
//! chunk per column, and a footer directory of per-column chunk offsets so
//! readers can decode any subset of columns without touching the rest.
//!
//! Layout (v2):
//!
//! ```text
//! magic(8) | version(1) | block_id(varint) | header_len(varint)
//! | compressed header: rows(varint) nfields(varint) fields…
//! | chunk[0] … chunk[n-1]           (each compress_adaptive(validity+data))
//! | footer: ncols(varint) { offset(varint) len(varint) }…   (offsets are
//!   relative to the first chunk byte)
//! | zones (optional): ZONE_SECTION_TAG(1) then per column
//!   { present(1) [min max (type-tagged values)] null_count(varint) }
//! | footer_start(u64 LE)            (absolute offset of the footer)
//! ```
//!
//! The zone section is optional: a footer that ends right after the chunk
//! directory (everything written before zone maps existed) parses fine
//! and simply reports no zones, so readers can never skip on its behalf.
//! A *present but malformed* zone section is a corruption error, never a
//! panic.

use crate::column::{Column, ColumnData, Validity};
use crate::compress;
use crate::encoding::{bitpack, delta, dict, rle, varint};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use feisu_common::{BlockId, FeisuError, Result};

/// Magic bytes opening every serialized block.
pub const BLOCK_MAGIC: &[u8; 8] = b"FEISUBLK";
/// Current on-disk format version. v2 added the per-column chunk directory;
/// v1 (whole-body compression, no directory) is no longer readable and is
/// rejected as corrupt, like any other unknown version.
pub const BLOCK_VERSION: u8 = 2;

/// Zone statistics for one column of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: usize,
}

/// A columnar slice of a table partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    id: BlockId,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Block {
    /// Builds a block; all columns must share the same length and match the
    /// schema's types.
    pub fn new(id: BlockId, schema: Schema, columns: Vec<Column>) -> Result<Block> {
        let rows = columns.first().map_or(0, |c| c.len());
        Block::new_with_rows(id, schema, columns, rows)
    }

    /// Like [`Block::new`] but with an explicit row count, so a block whose
    /// columns were all pruned by selective decode still reports how many
    /// rows it covers.
    pub fn new_with_rows(
        id: BlockId,
        schema: Schema,
        columns: Vec<Column>,
        rows: usize,
    ) -> Result<Block> {
        if schema.len() != columns.len() {
            return Err(FeisuError::Internal(format!(
                "block {id}: schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.len() != rows {
                return Err(FeisuError::Internal(format!(
                    "block {id}: ragged columns ({} vs {rows} rows)",
                    c.len()
                )));
            }
            if c.data_type() != f.data_type {
                return Err(FeisuError::Internal(format!(
                    "block {id}: column `{}` is {} but schema says {}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(Block {
            id,
            schema,
            columns,
            rows,
        })
    }

    pub fn id(&self) -> BlockId {
        self.id
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Zone statistics for column `i`.
    pub fn stats(&self, i: usize) -> ColumnStats {
        let c = &self.columns[i];
        let (min, max) = match c.min_max() {
            Some((lo, hi)) => (Some(lo), Some(hi)),
            None => (None, None),
        };
        ColumnStats {
            min,
            max,
            null_count: c.null_count(),
        }
    }

    /// Approximate uncompressed in-memory footprint.
    pub fn footprint(&self) -> usize {
        self.columns.iter().map(|c| c.footprint()).sum()
    }

    /// Serializes the block to the Feisu binary format, zone maps included.
    pub fn serialize(&self) -> Vec<u8> {
        self.serialize_with(true)
    }

    /// Serializes the block, optionally omitting the footer zone section.
    /// `serialize_with(false)` reproduces the pre-zone-map layout byte for
    /// byte — used by tests to pin backward compatibility with blocks
    /// written before zone maps existed.
    pub fn serialize_with(&self, zone_maps: bool) -> Vec<u8> {
        let mut header = Vec::with_capacity(self.schema.len() * 16 + 8);
        varint::encode(self.rows as u64, &mut header);
        varint::encode(self.schema.len() as u64, &mut header);
        for f in self.schema.fields() {
            varint::encode(f.name.len() as u64, &mut header);
            header.extend_from_slice(f.name.as_bytes());
            header.push(type_tag(f.data_type));
            header.push(f.nullable as u8);
        }
        let header = compress::compress_adaptive(&header);

        let mut out = Vec::with_capacity(self.footprint() / 2 + 64);
        out.extend_from_slice(BLOCK_MAGIC);
        out.push(BLOCK_VERSION);
        varint::encode(self.id.raw(), &mut out);
        varint::encode(header.len() as u64, &mut out);
        out.extend_from_slice(&header);

        let chunks_start = out.len();
        let mut directory = Vec::with_capacity(self.columns.len());
        let mut body = Vec::new();
        for c in &self.columns {
            body.clear();
            encode_column(c, &mut body);
            let chunk = compress::compress_adaptive(&body);
            directory.push((out.len() - chunks_start, chunk.len()));
            out.extend_from_slice(&chunk);
        }

        let footer_start = out.len() as u64;
        varint::encode(self.columns.len() as u64, &mut out);
        for (offset, len) in directory {
            varint::encode(offset as u64, &mut out);
            varint::encode(len as u64, &mut out);
        }
        if zone_maps {
            out.push(ZONE_SECTION_TAG);
            for i in 0..self.columns.len() {
                let stats = self.stats(i);
                match (stats.min, stats.max) {
                    (Some(min), Some(max)) => {
                        out.push(1);
                        encode_zone_value(&min, &mut out);
                        encode_zone_value(&max, &mut out);
                    }
                    _ => out.push(0),
                }
                varint::encode(stats.null_count as u64, &mut out);
            }
        }
        out.extend_from_slice(&footer_start.to_le_bytes());
        out
    }

    /// Parses a serialized block, decoding every column.
    pub fn deserialize(buf: &[u8]) -> Result<Block> {
        let layout = BlockLayout::parse(buf)?;
        let mut columns = Vec::with_capacity(layout.schema.len());
        for i in 0..layout.schema.len() {
            columns.push(layout.decode_chunk(buf, i)?);
        }
        Block::new_with_rows(layout.id, layout.schema, columns, layout.rows)
    }

    /// Parses a serialized block but decodes only the named columns, using
    /// the footer's offset directory to skip the rest entirely — the
    /// decompressor never touches an unrequested chunk. The result is a
    /// block whose schema is the requested subset in stored order; its row
    /// count still reflects the full block (even if `names` is empty).
    ///
    /// Requesting a column the block does not have is a corruption error,
    /// and names may be repeated (decoded once).
    pub fn deserialize_columns(buf: &[u8], names: &[&str]) -> Result<Block> {
        let layout = BlockLayout::parse(buf)?;
        let mut wanted = vec![false; layout.schema.len()];
        for name in names {
            let i = layout.schema.index_of(name).ok_or_else(|| {
                FeisuError::Corrupt(format!("requested column `{name}` not in block"))
            })?;
            wanted[i] = true;
        }
        let mut fields = Vec::new();
        let mut columns = Vec::new();
        for (i, want) in wanted.iter().enumerate() {
            if *want {
                fields.push(layout.schema.fields()[i].clone());
                columns.push(layout.decode_chunk(buf, i)?);
            }
        }
        Block::new_with_rows(layout.id, Schema::new(fields), columns, layout.rows)
    }

    /// Reads id, schema and row count without decoding any column chunk.
    /// Cheap: only the (small) schema header is decompressed.
    pub fn read_header(buf: &[u8]) -> Result<(BlockId, Schema, usize)> {
        let layout = BlockLayout::parse(buf)?;
        Ok((layout.id, layout.schema, layout.rows))
    }

    /// Reads the block's metadata — id, schema, row count and the footer
    /// zone maps if present — without decoding any column chunk. This is
    /// the zone-skip entry point: a leaf calls it first and only decodes
    /// chunks when the zones fail to disprove the predicate.
    pub fn read_meta(buf: &[u8]) -> Result<BlockMeta> {
        let layout = BlockLayout::parse(buf)?;
        Ok(BlockMeta {
            id: layout.id,
            rows: layout.rows,
            schema: layout.schema,
            zones: layout.zones,
            meta_bytes: layout.meta_bytes,
        })
    }
}

/// Metadata read without touching column chunks: envelope + footer only.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    pub id: BlockId,
    pub rows: usize,
    pub schema: Schema,
    /// Per-column zone statistics in schema order, `None` when the block
    /// was written without a zone section (pre-zone-map layout).
    pub zones: Option<Vec<ColumnStats>>,
    /// Bytes a reader must touch to obtain this metadata: envelope +
    /// compressed header + footer (directory, zones, trailer). Column
    /// chunks are excluded.
    pub meta_bytes: usize,
}

/// Parsed v2 envelope: schema header plus the chunk directory, no column
/// data decoded yet.
struct BlockLayout {
    id: BlockId,
    rows: usize,
    schema: Schema,
    chunks_start: usize,
    /// Per column: (offset relative to `chunks_start`, chunk length).
    directory: Vec<(usize, usize)>,
    /// Footer zone maps in schema order, absent for pre-zone-map blocks.
    zones: Option<Vec<ColumnStats>>,
    /// Envelope + header + footer byte count (everything but the chunks).
    meta_bytes: usize,
}

impl BlockLayout {
    fn parse(buf: &[u8]) -> Result<BlockLayout> {
        if buf.len() < 9 || &buf[..8] != BLOCK_MAGIC {
            return Err(FeisuError::Corrupt("bad block magic".into()));
        }
        if buf[8] != BLOCK_VERSION {
            return Err(FeisuError::Corrupt(format!(
                "unsupported block version {}",
                buf[8]
            )));
        }
        let mut pos = 9usize;
        let id = BlockId(varint::decode(buf, &mut pos)?);
        let header_len = varint::decode(buf, &mut pos)? as usize;
        let header_end = pos
            .checked_add(header_len)
            .filter(|&end| end <= buf.len())
            .ok_or_else(|| FeisuError::Corrupt("truncated block header".into()))?;
        let header = compress::decompress(&buf[pos..header_end])?;
        let chunks_start = header_end;

        let mut hpos = 0usize;
        let rows = varint::decode(&header, &mut hpos)? as usize;
        let nfields = varint::decode(&header, &mut hpos)? as usize;
        // Each field costs at least 3 header bytes; a count past that bound
        // is corrupt and must not drive a huge allocation.
        if nfields > header.len() {
            return Err(FeisuError::Corrupt(format!(
                "implausible field count {nfields}"
            )));
        }
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            let name_len = varint::decode(&header, &mut hpos)? as usize;
            let end = hpos
                .checked_add(name_len)
                .filter(|&end| end <= header.len())
                .ok_or_else(|| FeisuError::Corrupt("truncated field name".into()))?;
            let name = std::str::from_utf8(&header[hpos..end])
                .map_err(|_| FeisuError::Corrupt("field name not utf8".into()))?
                .to_string();
            hpos = end;
            let dt = type_from_tag(
                *header
                    .get(hpos)
                    .ok_or_else(|| FeisuError::Corrupt("missing type tag".into()))?,
            )?;
            let nullable = *header
                .get(hpos + 1)
                .ok_or_else(|| FeisuError::Corrupt("missing nullable flag".into()))?
                != 0;
            hpos += 2;
            if fields.iter().any(|f: &Field| f.name == name) {
                return Err(FeisuError::Corrupt(format!(
                    "duplicate column name `{name}`"
                )));
            }
            fields.push(Field::new(name, dt, nullable));
        }
        let schema = Schema::new(fields);

        // The trailing 8 bytes locate the footer; everything between the
        // chunks and the footer must stay inside the buffer.
        if buf.len() < chunks_start + 8 {
            return Err(FeisuError::Corrupt("truncated block footer".into()));
        }
        let trailer_start = buf.len() - 8;
        let footer_start = u64::from_le_bytes(buf[trailer_start..].try_into().unwrap()) as usize;
        if footer_start < chunks_start || footer_start > trailer_start {
            return Err(FeisuError::Corrupt(format!(
                "footer offset {footer_start} out of range"
            )));
        }
        let footer = &buf[..trailer_start];
        let mut fpos = footer_start;
        let ncols = varint::decode(footer, &mut fpos)? as usize;
        if ncols != schema.len() {
            return Err(FeisuError::Corrupt(format!(
                "directory lists {ncols} columns, schema has {}",
                schema.len()
            )));
        }
        let chunk_region = footer_start - chunks_start;
        let mut directory = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let offset = varint::decode(footer, &mut fpos)? as usize;
            let len = varint::decode(footer, &mut fpos)? as usize;
            if offset.checked_add(len).is_none_or(|end| end > chunk_region) {
                return Err(FeisuError::Corrupt(format!(
                    "column chunk at {offset}+{len} exceeds chunk region {chunk_region}"
                )));
            }
            directory.push((offset, len));
        }
        // Optional zone section: the directory ending exactly at the
        // trailer means a pre-zone-map footer (no skipping possible); any
        // extra bytes must be a well-formed zone section ending exactly at
        // the trailer.
        let zones = if fpos == trailer_start {
            None
        } else {
            let tag = footer[fpos];
            fpos += 1;
            if tag != ZONE_SECTION_TAG {
                return Err(FeisuError::Corrupt(format!(
                    "unknown footer section tag {tag}"
                )));
            }
            let mut stats = Vec::with_capacity(schema.len());
            for field in schema.fields() {
                let present = *footer
                    .get(fpos)
                    .ok_or_else(|| FeisuError::Corrupt("truncated zone section".into()))?;
                fpos += 1;
                let (min, max) = match present {
                    0 => (None, None),
                    1 => {
                        let min = decode_zone_value(footer, &mut fpos, field.data_type)?;
                        let max = decode_zone_value(footer, &mut fpos, field.data_type)?;
                        // Provably inverted bounds are corruption. NaN float
                        // bounds compare as None and pass: min_max() orders
                        // by total_cmp, so NaN can be a legitimate bound.
                        if min.sql_cmp(&max) == Some(std::cmp::Ordering::Greater) {
                            return Err(FeisuError::Corrupt(format!(
                                "zone min {min} exceeds max {max} for column `{}`",
                                field.name
                            )));
                        }
                        (Some(min), Some(max))
                    }
                    other => {
                        return Err(FeisuError::Corrupt(format!(
                            "bad zone presence flag {other}"
                        )))
                    }
                };
                let null_count = varint::decode(footer, &mut fpos)? as usize;
                if null_count > rows {
                    return Err(FeisuError::Corrupt(format!(
                        "zone null count {null_count} exceeds {rows} rows"
                    )));
                }
                stats.push(ColumnStats {
                    min,
                    max,
                    null_count,
                });
            }
            if fpos != trailer_start {
                return Err(FeisuError::Corrupt(format!(
                    "{} trailing bytes after zone section",
                    trailer_start - fpos
                )));
            }
            Some(stats)
        };
        let meta_bytes = chunks_start + (buf.len() - footer_start);
        Ok(BlockLayout {
            id,
            rows,
            schema,
            chunks_start,
            directory,
            zones,
            meta_bytes,
        })
    }

    /// Decompresses and decodes the chunk for column `i`.
    fn decode_chunk(&self, buf: &[u8], i: usize) -> Result<Column> {
        let (offset, len) = self.directory[i];
        let start = self.chunks_start + offset;
        let body = compress::decompress(&buf[start..start + len])?;
        let mut pos = 0usize;
        let column = decode_column(
            self.schema.fields()[i].data_type,
            self.rows,
            &body,
            &mut pos,
        )?;
        if pos != body.len() {
            return Err(FeisuError::Corrupt(format!(
                "column chunk has {} trailing bytes",
                body.len() - pos
            )));
        }
        Ok(column)
    }
}

/// Tag byte opening the optional footer zone section. Distinguishes a
/// zone-bearing footer from any future footer extension; an unknown tag is
/// corruption, not silently ignored data.
const ZONE_SECTION_TAG: u8 = 1;

/// Encodes one zone bound as `type_tag(1) | payload`. The tag is written
/// even though the schema implies it so a reader can cross-check: a zone
/// whose tag disagrees with its column's type is corruption.
fn encode_zone_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Bool(b) => {
            out.push(type_tag(DataType::Bool));
            out.push(*b as u8);
        }
        Value::Int64(i) => {
            out.push(type_tag(DataType::Int64));
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float64(f) => {
            out.push(type_tag(DataType::Float64));
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Utf8(s) => {
            out.push(type_tag(DataType::Utf8));
            varint::encode(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        // Column::min_max never yields Null bounds; the presence byte
        // covers the all-null case.
        Value::Null => unreachable!("null zone bound"),
    }
}

/// Decodes one zone bound, requiring its type tag to match the column's
/// declared type.
fn decode_zone_value(buf: &[u8], pos: &mut usize, dt: DataType) -> Result<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| FeisuError::Corrupt("truncated zone value".into()))?;
    *pos += 1;
    if type_from_tag(tag)? != dt {
        return Err(FeisuError::Corrupt(format!(
            "zone value tag {tag} does not match column type {dt}"
        )));
    }
    match dt {
        DataType::Bool => {
            let b = *buf
                .get(*pos)
                .ok_or_else(|| FeisuError::Corrupt("truncated zone value".into()))?;
            *pos += 1;
            Ok(Value::Bool(b != 0))
        }
        DataType::Int64 => {
            let end = pos
                .checked_add(8)
                .filter(|&end| end <= buf.len())
                .ok_or_else(|| FeisuError::Corrupt("truncated zone value".into()))?;
            let v = i64::from_le_bytes(buf[*pos..end].try_into().unwrap());
            *pos = end;
            Ok(Value::Int64(v))
        }
        DataType::Float64 => {
            let end = pos
                .checked_add(8)
                .filter(|&end| end <= buf.len())
                .ok_or_else(|| FeisuError::Corrupt("truncated zone value".into()))?;
            let v = f64::from_bits(u64::from_le_bytes(buf[*pos..end].try_into().unwrap()));
            *pos = end;
            Ok(Value::Float64(v))
        }
        DataType::Utf8 => {
            let len = varint::decode(buf, pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|&end| end <= buf.len())
                .ok_or_else(|| FeisuError::Corrupt("truncated zone value".into()))?;
            let s = std::str::from_utf8(&buf[*pos..end])
                .map_err(|_| FeisuError::Corrupt("zone value not utf8".into()))?
                .to_string();
            *pos = end;
            Ok(Value::Utf8(s))
        }
    }
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Utf8 => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int64),
        2 => Ok(DataType::Float64),
        3 => Ok(DataType::Utf8),
        other => Err(FeisuError::Corrupt(format!("unknown type tag {other}"))),
    }
}

/// Per-column encoding tags.
const ENC_RLE: u8 = 0;
const ENC_DELTA: u8 = 1;
const ENC_FLOAT_RAW: u8 = 2;
const ENC_BOOL_PACK: u8 = 3;
const ENC_DICT: u8 = 4;

fn encode_column(c: &Column, out: &mut Vec<u8>) {
    // Validity first (word-aligned bitmap).
    let words = c.validity().words();
    varint::encode(words.len() as u64, out);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    match c.data() {
        ColumnData::Int64(v) => {
            // RLE wins when runs are long; delta otherwise.
            if rle::run_count(v) * 4 <= v.len().max(1) {
                out.push(ENC_RLE);
                rle::encode(v, out);
            } else {
                out.push(ENC_DELTA);
                delta::encode(v, out);
            }
        }
        ColumnData::Float64(v) => {
            out.push(ENC_FLOAT_RAW);
            varint::encode(v.len() as u64, out);
            for f in v {
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        }
        ColumnData::Bool(v) => {
            out.push(ENC_BOOL_PACK);
            if v.is_empty() {
                varint::encode(0, out);
                out.push(1);
            } else {
                let bits: Vec<u64> = v.iter().map(|&b| b as u64).collect();
                bitpack::encode(&bits, 1, out);
            }
        }
        ColumnData::Utf8(v) => {
            out.push(ENC_DICT);
            let refs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
            dict::encode(&refs, out);
        }
    }
}

fn decode_column(dt: DataType, rows: usize, buf: &[u8], pos: &mut usize) -> Result<Column> {
    let nwords = varint::decode(buf, pos)? as usize;
    // Corruption-controlled count: checked multiply, or the bounds check
    // below is defeated by overflow wraparound on 32-bit targets.
    let nbytes = nwords
        .checked_mul(8)
        .ok_or_else(|| FeisuError::Corrupt("validity word count overflow".into()))?;
    if buf.len().saturating_sub(*pos) < nbytes {
        return Err(FeisuError::Corrupt("truncated validity bitmap".into()));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
        *pos += 8;
    }
    let validity = Validity::from_words(words, rows);
    let enc = *buf
        .get(*pos)
        .ok_or_else(|| FeisuError::Corrupt("missing column encoding tag".into()))?;
    *pos += 1;
    let data = match (dt, enc) {
        (DataType::Int64, ENC_RLE) => ColumnData::Int64(rle::decode(buf, pos)?),
        (DataType::Int64, ENC_DELTA) => ColumnData::Int64(delta::decode(buf, pos)?),
        (DataType::Float64, ENC_FLOAT_RAW) => {
            let n = varint::decode(buf, pos)? as usize;
            let nbytes = n
                .checked_mul(8)
                .ok_or_else(|| FeisuError::Corrupt("float count overflow".into()))?;
            if buf.len().saturating_sub(*pos) < nbytes {
                return Err(FeisuError::Corrupt("truncated float column".into()));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(u64::from_le_bytes(
                    buf[*pos..*pos + 8].try_into().unwrap(),
                )));
                *pos += 8;
            }
            ColumnData::Float64(v)
        }
        (DataType::Bool, ENC_BOOL_PACK) => {
            let bits = bitpack::decode(buf, pos)?;
            ColumnData::Bool(bits.into_iter().map(|b| b != 0).collect())
        }
        (DataType::Utf8, ENC_DICT) => ColumnData::Utf8(dict::decode(buf, pos)?),
        (dt, enc) => {
            return Err(FeisuError::Corrupt(format!(
                "encoding tag {enc} invalid for type {dt}"
            )))
        }
    };
    let len = match &data {
        ColumnData::Bool(v) => v.len(),
        ColumnData::Int64(v) => v.len(),
        ColumnData::Float64(v) => v.len(),
        ColumnData::Utf8(v) => v.len(),
    };
    if len != rows {
        return Err(FeisuError::Corrupt(format!(
            "column decoded {len} rows, block declares {rows}"
        )));
    }
    Ok(Column::new(data, validity))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let schema = Schema::new(vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("clicks", DataType::Int64, true),
            Field::new("ctr", DataType::Float64, false),
            Field::new("spam", DataType::Bool, false),
        ]);
        let columns = vec![
            Column::from_utf8(
                (0..100)
                    .map(|i| format!("https://example.com/page/{}", i % 7))
                    .collect(),
            ),
            Column::from_values(
                DataType::Int64,
                &(0..100)
                    .map(|i| {
                        if i % 10 == 0 {
                            Value::Null
                        } else {
                            Value::Int64(i * 3)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            Column::from_f64((0..100).map(|i| i as f64 / 100.0).collect()),
            Column::from_bool((0..100).map(|i| i % 13 == 0).collect()),
        ];
        Block::new(BlockId(42), schema, columns).unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64, false)]);
        // Wrong column count.
        assert!(Block::new(BlockId(0), schema.clone(), vec![]).is_err());
        // Wrong type.
        assert!(Block::new(
            BlockId(0),
            schema.clone(),
            vec![Column::from_bool(vec![true])]
        )
        .is_err());
        // Ragged lengths.
        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Int64, false),
        ]);
        assert!(Block::new(
            BlockId(0),
            schema2,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![1, 2])]
        )
        .is_err());
    }

    #[test]
    fn serialize_roundtrip() {
        let b = sample_block();
        let bytes = b.serialize();
        let back = Block::deserialize(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.id(), BlockId(42));
        assert_eq!(back.rows(), 100);
    }

    #[test]
    fn serialized_form_compresses_repetitive_data() {
        let b = sample_block();
        let bytes = b.serialize();
        assert!(
            bytes.len() < b.footprint(),
            "serialized {} >= footprint {}",
            bytes.len(),
            b.footprint()
        );
    }

    #[test]
    fn empty_block_roundtrip() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let b = Block::new(BlockId(1), schema, vec![Column::from_i64(vec![])]).unwrap();
        let back = Block::deserialize(&b.serialize()).unwrap();
        assert_eq!(back.rows(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_block().serialize();
        bytes[0] = b'X';
        assert!(matches!(
            Block::deserialize(&bytes),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_block().serialize();
        bytes[8] = 99;
        assert!(Block::deserialize(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_block().serialize();
        for cut in [bytes.len() / 2, bytes.len() - 1, 10] {
            assert!(
                Block::deserialize(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    /// Assembles a v2 buffer from raw parts so corruption tests can craft
    /// hostile inputs: `fields` are (name, tag, nullable) header entries,
    /// `chunks` are pre-compressed column chunks, and `directory` overrides
    /// the footer entries (pass the natural offsets to get a valid file).
    fn assemble_v2(
        rows: u64,
        fields: &[(&str, u8, u8)],
        chunks: &[Vec<u8>],
        directory: &[(u64, u64)],
    ) -> Vec<u8> {
        let mut header = Vec::new();
        varint::encode(rows, &mut header);
        varint::encode(fields.len() as u64, &mut header);
        for (name, tag, nullable) in fields {
            varint::encode(name.len() as u64, &mut header);
            header.extend_from_slice(name.as_bytes());
            header.push(*tag);
            header.push(*nullable);
        }
        let header = compress::compress_adaptive(&header);
        let mut buf = Vec::new();
        buf.extend_from_slice(BLOCK_MAGIC);
        buf.push(BLOCK_VERSION);
        varint::encode(42, &mut buf);
        varint::encode(header.len() as u64, &mut buf);
        buf.extend_from_slice(&header);
        for chunk in chunks {
            buf.extend_from_slice(chunk);
        }
        let footer_start = buf.len() as u64;
        varint::encode(directory.len() as u64, &mut buf);
        for (offset, len) in directory {
            varint::encode(*offset, &mut buf);
            varint::encode(*len, &mut buf);
        }
        buf.extend_from_slice(&footer_start.to_le_bytes());
        buf
    }

    #[test]
    fn huge_validity_word_count_rejected_not_panicking() {
        // A column chunk claiming u64::MAX validity words: the byte-size
        // multiply must be checked, not wrap past the bounds check (or
        // panic in debug builds).
        let mut body = Vec::new();
        varint::encode(u64::MAX, &mut body); // validity word count
        let chunk = compress::compress_adaptive(&body);
        let len = chunk.len() as u64;
        let buf = assemble_v2(
            4,
            &[("x", type_tag(DataType::Int64), 1)],
            &[chunk],
            &[(0, len)],
        );
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn old_version_rejected() {
        let mut bytes = sample_block().serialize();
        bytes[8] = 1; // v1: whole-body compression, no directory
        assert!(matches!(
            Block::deserialize(&bytes),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_footer_rejected_not_panicking() {
        let bytes = sample_block().serialize();
        // Shave the trailer pointer byte by byte; every prefix must fail
        // cleanly, including ones that cut into the footer varints.
        for cut in 1..=12 {
            assert!(
                matches!(
                    Block::deserialize(&bytes[..bytes.len() - cut]),
                    Err(FeisuError::Corrupt(_))
                ),
                "cut of {cut} trailing bytes must be Corrupt"
            );
        }
    }

    #[test]
    fn footer_offset_out_of_range_rejected() {
        let mut bytes = sample_block().serialize();
        let n = bytes.len();
        // Trailer pointing past the trailer itself.
        bytes[n - 8..].copy_from_slice(&(n as u64).to_le_bytes());
        assert!(matches!(
            Block::deserialize(&bytes),
            Err(FeisuError::Corrupt(_))
        ));
        // Trailer pointing before the first chunk (into the header).
        bytes[n - 8..].copy_from_slice(&2u64.to_le_bytes());
        assert!(matches!(
            Block::deserialize(&bytes),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn chunk_offset_past_end_rejected_not_panicking() {
        let mut body = Vec::new();
        varint::encode(0, &mut body); // zero validity words
        body.push(ENC_DELTA);
        delta::encode(&[1, 2, 3, 4], &mut body);
        let chunk = compress::compress_adaptive(&body);
        let len = chunk.len() as u64;
        let fields = [("x", type_tag(DataType::Int64), 0)];
        // Offset pointing past the chunk region.
        let buf = assemble_v2(4, &fields, &[chunk.clone()], &[(len + 1000, len)]);
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
        // Length running past the chunk region; offset+len may also wrap.
        let buf = assemble_v2(4, &fields, &[chunk.clone()], &[(0, u64::MAX)]);
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
        let buf = assemble_v2(4, &fields, &[chunk], &[(u64::MAX, u64::MAX)]);
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn directory_count_mismatch_rejected() {
        let mut body = Vec::new();
        varint::encode(0, &mut body);
        body.push(ENC_DELTA);
        delta::encode(&[7, 7, 7, 7], &mut body);
        let chunk = compress::compress_adaptive(&body);
        let len = chunk.len() as u64;
        // One schema field, two directory entries.
        let buf = assemble_v2(
            4,
            &[("x", type_tag(DataType::Int64), 0)],
            &[chunk],
            &[(0, len), (0, len)],
        );
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn duplicate_column_name_rejected() {
        let mut body = Vec::new();
        varint::encode(0, &mut body);
        body.push(ENC_DELTA);
        delta::encode(&[1, 2, 3, 4], &mut body);
        let chunk = compress::compress_adaptive(&body);
        let len = chunk.len() as u64;
        let buf = assemble_v2(
            4,
            &[
                ("x", type_tag(DataType::Int64), 0),
                ("x", type_tag(DataType::Int64), 0),
            ],
            &[chunk.clone(), chunk],
            &[(0, len), (0, len)],
        );
        assert!(matches!(
            Block::deserialize(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_requested_column_rejected() {
        let bytes = sample_block().serialize();
        assert!(matches!(
            Block::deserialize_columns(&bytes, &["nope"]),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn deserialize_columns_subset() {
        let b = sample_block();
        let bytes = b.serialize();
        // Out-of-order, duplicated request: decoded once, in stored order.
        let sub = Block::deserialize_columns(&bytes, &["ctr", "url", "ctr"]).unwrap();
        assert_eq!(sub.id(), b.id());
        assert_eq!(sub.rows(), b.rows());
        assert_eq!(sub.schema().len(), 2);
        assert_eq!(sub.schema().fields()[0].name, "url");
        assert_eq!(sub.schema().fields()[1].name, "ctr");
        assert_eq!(sub.column_by_name("url"), b.column_by_name("url"));
        assert_eq!(sub.column_by_name("ctr"), b.column_by_name("ctr"));
    }

    #[test]
    fn deserialize_columns_empty_keeps_row_count() {
        let bytes = sample_block().serialize();
        let sub = Block::deserialize_columns(&bytes, &[]).unwrap();
        assert_eq!(sub.rows(), 100);
        assert_eq!(sub.schema().len(), 0);
    }

    #[test]
    fn read_header_matches_full_decode() {
        let b = sample_block();
        let bytes = b.serialize();
        let (id, schema, rows) = Block::read_header(&bytes).unwrap();
        assert_eq!(id, b.id());
        assert_eq!(&schema, b.schema());
        assert_eq!(rows, b.rows());
    }

    /// Like `assemble_v2` but with caller-supplied raw bytes spliced
    /// between the chunk directory and the trailer — hostile zone sections.
    fn assemble_v2_with_zone_bytes(
        rows: u64,
        fields: &[(&str, u8, u8)],
        chunks: &[Vec<u8>],
        directory: &[(u64, u64)],
        zone_bytes: &[u8],
    ) -> Vec<u8> {
        let mut buf = assemble_v2(rows, fields, chunks, directory);
        let trailer = buf.split_off(buf.len() - 8);
        buf.extend_from_slice(zone_bytes);
        buf.extend_from_slice(&trailer);
        buf
    }

    /// One valid int chunk + matching directory entry, shared by the zone
    /// corruption tests below.
    fn int_chunk() -> (Vec<u8>, u64) {
        let mut body = Vec::new();
        varint::encode(0, &mut body);
        body.push(ENC_DELTA);
        delta::encode(&[1, 2, 3, 4], &mut body);
        let chunk = compress::compress_adaptive(&body);
        let len = chunk.len() as u64;
        (chunk, len)
    }

    #[test]
    fn read_meta_roundtrips_zone_maps() {
        let b = sample_block();
        let bytes = b.serialize();
        let meta = Block::read_meta(&bytes).unwrap();
        assert_eq!(meta.id, b.id());
        assert_eq!(&meta.schema, b.schema());
        assert_eq!(meta.rows, 100);
        let zones = meta.zones.expect("serialize writes zone maps");
        assert_eq!(zones.len(), 4);
        for (i, z) in zones.iter().enumerate() {
            assert_eq!(z, &b.stats(i), "zone {i} must match live column stats");
        }
        assert_eq!(zones[1].min, Some(Value::Int64(3)));
        assert_eq!(zones[1].max, Some(Value::Int64(297)));
        assert_eq!(zones[1].null_count, 10);
        assert!(meta.meta_bytes > 0 && meta.meta_bytes < bytes.len());
    }

    #[test]
    fn all_null_column_gets_absent_zone_bounds() {
        let schema = Schema::new(vec![Field::new("n", DataType::Int64, true)]);
        let col =
            Column::from_values(DataType::Int64, &[Value::Null, Value::Null, Value::Null]).unwrap();
        let b = Block::new(BlockId(7), schema, vec![col]).unwrap();
        let meta = Block::read_meta(&b.serialize()).unwrap();
        let zones = meta.zones.unwrap();
        assert_eq!(zones[0].min, None);
        assert_eq!(zones[0].max, None);
        assert_eq!(zones[0].null_count, 3);
    }

    #[test]
    fn zoneless_footer_still_loads_and_reports_no_zones() {
        let b = sample_block();
        let legacy = b.serialize_with(false);
        let zoned = b.serialize();
        assert!(legacy.len() < zoned.len());
        let meta = Block::read_meta(&legacy).unwrap();
        assert_eq!(meta.zones, None);
        assert_eq!(&meta.schema, b.schema());
        // Full and subset decode both still work on the legacy layout.
        assert_eq!(Block::deserialize(&legacy).unwrap(), b);
        let sub = Block::deserialize_columns(&legacy, &["clicks"]).unwrap();
        assert_eq!(sub.column_by_name("clicks"), b.column_by_name("clicks"));
    }

    #[test]
    fn zoned_block_full_and_subset_decode_unchanged() {
        let b = sample_block();
        let bytes = b.serialize();
        assert_eq!(Block::deserialize(&bytes).unwrap(), b);
        let sub = Block::deserialize_columns(&bytes, &["ctr", "url"]).unwrap();
        assert_eq!(sub.column_by_name("url"), b.column_by_name("url"));
        assert_eq!(sub.column_by_name("ctr"), b.column_by_name("ctr"));
    }

    #[test]
    fn unknown_zone_section_tag_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &[9]);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_zone_presence_flag_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        let buf =
            assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &[ZONE_SECTION_TAG, 2]);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn zone_value_type_mismatch_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        // min claims to be a Bool on an Int64 column.
        let mut zone = vec![ZONE_SECTION_TAG, 1, type_tag(DataType::Bool), 1];
        zone.push(type_tag(DataType::Bool));
        zone.push(1);
        zone.push(0); // null_count
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &zone);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_zone_value_rejected_not_panicking() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        // Int64 min with only 3 of its 8 payload bytes.
        let zone = vec![ZONE_SECTION_TAG, 1, type_tag(DataType::Int64), 1, 2, 3];
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &zone);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn inverted_zone_bounds_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        let mut zone = vec![ZONE_SECTION_TAG, 1];
        encode_zone_value(&Value::Int64(10), &mut zone); // min
        encode_zone_value(&Value::Int64(3), &mut zone); // max < min
        zone.push(0); // null_count
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &zone);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn zone_null_count_above_rows_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        let mut zone = vec![ZONE_SECTION_TAG, 0]; // bounds absent
        varint::encode(5, &mut zone); // null_count > 4 rows
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &zone);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_zone_section_rejected() {
        let (chunk, len) = int_chunk();
        let fields = [("x", type_tag(DataType::Int64), 0)];
        let mut zone = vec![ZONE_SECTION_TAG, 1];
        encode_zone_value(&Value::Int64(1), &mut zone);
        encode_zone_value(&Value::Int64(4), &mut zone);
        zone.push(0); // null_count
        zone.push(0xAB); // garbage after a well-formed section
        let buf = assemble_v2_with_zone_bytes(4, &fields, &[chunk], &[(0, len)], &zone);
        assert!(matches!(
            Block::read_meta(&buf),
            Err(FeisuError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_zone_section_mid_column_rejected() {
        let bytes = sample_block().serialize();
        let meta_len = Block::read_meta(&bytes).unwrap().meta_bytes;
        // Re-point the trailer at the original footer while cutting bytes
        // out of the zone section: every such mutilation must be Corrupt.
        let footer_start =
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()) as usize;
        let zone_len = bytes.len() - 8 - footer_start;
        assert!(zone_len > 0 && meta_len > zone_len);
        for cut in 1..zone_len.min(24) {
            let mut buf = bytes[..bytes.len() - 8 - cut].to_vec();
            buf.extend_from_slice(&(footer_start as u64).to_le_bytes());
            assert!(
                matches!(Block::read_meta(&buf), Err(FeisuError::Corrupt(_))),
                "zone section cut of {cut} bytes must be Corrupt"
            );
        }
    }

    #[test]
    fn stats_reflect_column_contents() {
        let b = sample_block();
        let clicks = b.stats(1);
        assert_eq!(clicks.null_count, 10);
        assert_eq!(clicks.min, Some(Value::Int64(3)));
        assert_eq!(clicks.max, Some(Value::Int64(297)));
    }

    #[test]
    fn column_by_name() {
        let b = sample_block();
        assert!(b.column_by_name("ctr").is_some());
        assert!(b.column_by_name("missing").is_none());
    }
}
