//! Feisu's columnar data format.
//!
//! Data in Baidu's workloads carry hundreds of attributes but queries touch
//! only a few, so Feisu stores tables column-wise (paper §III-A). This crate
//! implements the whole format layer from scratch:
//!
//! * typed [`value::Value`]s and [`schema::Schema`]s,
//! * nullable typed [`column::Column`] vectors,
//! * [`block::Block`]s — the unit of storage, scheduling and indexing —
//!   with per-column zone statistics and a binary serialization format,
//! * lightweight integer/string [`encoding`]s (varint, delta, RLE,
//!   dictionary, bit-packing),
//! * a from-scratch LZ-style [`compress`]ion codec,
//! * a [`json`] parser plus the nested-document flattening the paper
//!   describes ("nested data format such as json, which will be flattened
//!   into columns"),
//! * [`table`] partition metadata shared by the master and storage layers.

pub mod block;
pub mod column;
pub mod compress;
pub mod encoding;
pub mod json;
pub mod schema;
pub mod table;
pub mod value;

pub use block::{Block, BlockMeta, ColumnStats};
pub use column::{Column, ColumnBuilder};
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
