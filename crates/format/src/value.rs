//! Scalar values and data types.
//!
//! Feisu's type system is deliberately small — the production system serves
//! log/business/label data whose queried attributes are integers, floats,
//! booleans and strings. `Value` is the dynamically-typed scalar used at
//! plan boundaries (literals, constant folding, row materialization); bulk
//! data lives in typed `Column`s and never boxes per-value.

use std::cmp::Ordering;
use std::fmt;

/// Data types supported by the Feisu columnar format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int64,
    Float64,
    Utf8,
}

impl DataType {
    /// Rough per-value in-memory width in bytes, used by cost estimation.
    /// Strings use an average-width estimate.
    pub fn estimated_width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Utf8 => 24,
        }
    }

    /// Whether values of this type support arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "STRING",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar. `Null` is typeless, as in SQL.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int64(i64),
    Float64(f64),
    Utf8(String),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 for mixed int/float comparison and arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is null or the
    /// types are incomparable; ints and floats compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int64(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Utf8(a), Value::Utf8(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total order used by ORDER BY and B-tree keys: nulls sort first,
    /// then by type tag, then by value (floats via total order).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int64(_) => 2,
                Value::Float64(_) => 2, // same rank: numerics interleave
                Value::Utf8(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int64(a), Value::Int64(b)) => a.cmp(b),
            (Value::Float64(a), Value::Float64(b)) => a.total_cmp(b),
            (Value::Int64(a), Value::Float64(b)) => (*a as f64).total_cmp(b),
            (Value::Float64(a), Value::Int64(b)) => a.total_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Utf8(a), Value::Utf8(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality under SQL semantics (null = anything → false).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// Approximate in-memory footprint, used by cache accounting.
    pub fn footprint(&self) -> usize {
        match self {
            Value::Utf8(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

/// Structural equality (used by tests and hash keys): unlike `sql_eq`,
/// `Null == Null` and floats compare bitwise.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int64(a), Value::Int64(b)) => a == b,
            (Value::Float64(a), Value::Float64(b)) => a.to_bits() == b.to_bits(),
            (Value::Utf8(a), Value::Utf8(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::Int64(v) => {
                state.write_u8(2);
                state.write_u64(*v as u64);
            }
            Value::Float64(v) => {
                state.write_u8(3);
                state.write_u64(v.to_bits());
            }
            Value::Utf8(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int64(2).sql_cmp(&Value::Float64(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int64(1).sql_cmp(&Value::Float64(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float64(3.0).sql_cmp(&Value::Int64(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Utf8("a".into()).sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Utf8("t".into())), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut v = [
            Value::Int64(5),
            Value::Null,
            Value::Utf8("a".into()),
            Value::Int64(-1),
        ];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int64(-1));
        assert_eq!(v[2], Value::Int64(5));
        assert_eq!(v[3], Value::Utf8("a".into()));
    }

    #[test]
    fn structural_eq_treats_null_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Float64(f64::NAN), Value::Float64(f64::NAN));
        assert_ne!(Value::Int64(1), Value::Float64(1.0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use feisu_common::hash::hash_one;
        assert_eq!(hash_one(&Value::Int64(7)), hash_one(&Value::Int64(7)));
        assert_eq!(
            hash_one(&Value::Utf8("x".into())),
            hash_one(&Value::Utf8("x".into()))
        );
        assert_ne!(hash_one(&Value::Int64(7)), hash_one(&Value::Int64(8)));
    }

    #[test]
    fn conversions_and_accessors() {
        let v: Value = 42i64.into();
        assert_eq!(v.as_i64(), Some(42));
        assert_eq!(v.as_f64(), Some(42.0));
        let s: Value = "hi".into();
        assert_eq!(s.as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(3).to_string(), "3");
        assert_eq!(Value::Utf8("q".into()).to_string(), "'q'");
        assert_eq!(DataType::Utf8.to_string(), "STRING");
    }

    #[test]
    fn footprint_counts_string_bytes() {
        let short = Value::Int64(1).footprint();
        let long = Value::Utf8("x".repeat(100)).footprint();
        assert!(long > short + 90);
    }
}
