//! Table schemas.
//!
//! A schema is an ordered list of named, typed, optionally-nullable fields.
//! Production tables at Baidu carry ~200 attributes (paper Table I), so
//! field lookup by name is backed by a hash index rather than linear scan.

use crate::value::DataType;
use feisu_common::hash::FxHashMap;
use std::sync::Arc;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
        }
    }
}

/// An ordered, name-indexed collection of fields. Cheap to clone (`Arc`ed
/// internally via [`SchemaRef`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: FxHashMap<String, usize>,
}

/// Shared schema handle passed through plans and blocks.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema; panics on duplicate field names (a construction-time
    /// programming error, not a runtime condition).
    pub fn new(fields: Vec<Field>) -> Self {
        let mut by_name = FxHashMap::default();
        for (i, f) in fields.iter().enumerate() {
            let prev = by_name.insert(f.name.clone(), i);
            assert!(prev.is_none(), "duplicate field name: {}", f.name);
        }
        Schema { fields, by_name }
    }

    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        // The map is rebuilt lazily after wire deserialization; fall back
        // to a scan if it is empty but fields are not.
        if self.by_name.len() == self.fields.len() {
            self.by_name.get(name).copied()
        } else {
            self.fields.iter().position(|f| f.name == name)
        }
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Projects a subset of fields (by index) into a new schema.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Concatenates two schemas (used by join output); right-side duplicate
    /// names get a disambiguating suffix.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            let mut f = f.clone();
            if self.index_of(&f.name).is_some() {
                f.name = format!("{}:r", f.name);
            }
            fields.push(f);
        }
        Schema::new(fields)
    }

    /// Estimated bytes per row, used by cost models.
    pub fn estimated_row_width(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.data_type.estimated_width())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("clicks", DataType::Int64, false),
            Field::new("score", DataType::Float64, true),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("clicks"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(
            s.field_by_name("score").unwrap().data_type,
            DataType::Float64
        );
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("a", DataType::Utf8, false),
        ]);
    }

    #[test]
    fn project_preserves_order() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "score");
        assert_eq!(p.field(1).name, "url");
    }

    #[test]
    fn join_disambiguates_duplicates() {
        let s = sample();
        let joined = s.join(&sample());
        assert_eq!(joined.len(), 6);
        assert_eq!(joined.field(3).name, "url:r");
        assert!(joined.index_of("clicks:r").is_some());
    }

    #[test]
    fn row_width_estimate() {
        let s = sample();
        assert_eq!(s.estimated_row_width(), 24 + 8 + 8);
    }
}
