//! From-scratch JSON parsing and nested-document flattening.
//!
//! The paper (§III-A): "Feisu also supports nested data format such as
//! json, which will be flatten into columns when the data are processed."
//! This module implements a recursive-descent JSON parser (no external
//! crates) and the flattening rule: nested object keys join with `.`,
//! array elements with `[i]`, producing one scalar column per leaf path.

use crate::column::ColumnBuilder;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use feisu_common::{FeisuError, Result};
use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a top-level object key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses one JSON document from `input`, requiring it to be fully consumed.
pub fn parse(input: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> FeisuError {
        FeisuError::Parse(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn parse_literal(&mut self, lit: &str, v: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(pairs)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by `\uXXXX` with a low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        s.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences: the input was
                    // a &str so bytes are valid UTF-8 already.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf8"));
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

/// Flattens a document into `path → scalar` pairs. Nested keys join with
/// `.`; array elements get `[i]`. Scalars keep their JSON types: numbers
/// that are integral become `Int64`, others `Float64`.
pub fn flatten(doc: &Json) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    flatten_into("", doc, &mut out);
    out
}

fn flatten_into(prefix: &str, v: &Json, out: &mut Vec<(String, Value)>) {
    match v {
        Json::Object(pairs) => {
            for (k, child) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, child, out);
            }
        }
        Json::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten_into(&format!("{prefix}[{i}]"), child, out);
            }
        }
        Json::Null => out.push((prefix.to_string(), Value::Null)),
        Json::Bool(b) => out.push((prefix.to_string(), Value::Bool(*b))),
        Json::Number(n) => {
            let val = if n.fract() == 0.0 && n.abs() < 9e15 {
                Value::Int64(*n as i64)
            } else {
                Value::Float64(*n)
            };
            out.push((prefix.to_string(), val));
        }
        Json::String(s) => out.push((prefix.to_string(), Value::Utf8(s.clone()))),
    }
}

/// Converts a batch of JSON documents into columns: the union of all leaf
/// paths becomes the schema (alphabetical); missing paths are null. Type
/// per column is the widest type observed (Int64 ⊂ Float64; anything mixed
/// with strings becomes Utf8).
pub fn documents_to_columns(docs: &[Json]) -> Result<(Schema, Vec<crate::column::Column>)> {
    let mut rows: Vec<BTreeMap<String, Value>> = Vec::with_capacity(docs.len());
    let mut types: BTreeMap<String, DataType> = BTreeMap::new();
    for doc in docs {
        let mut row = BTreeMap::new();
        for (path, value) in flatten(doc) {
            if let Some(dt) = value.data_type() {
                types
                    .entry(path.clone())
                    .and_modify(|t| *t = widen(*t, dt))
                    .or_insert(dt);
            }
            row.insert(path, value);
        }
        rows.push(row);
    }
    let fields: Vec<Field> = types
        .iter()
        .map(|(name, dt)| Field::new(name.clone(), *dt, true))
        .collect();
    let schema = Schema::new(fields);
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for row in &rows {
        for (i, f) in schema.fields().iter().enumerate() {
            let v = row.get(&f.name).cloned().unwrap_or(Value::Null);
            builders[i].push(coerce(v, f.data_type)?);
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    Ok((schema, columns))
}

fn widen(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int64, Float64) | (Float64, Int64) => Float64,
        _ => Utf8,
    }
}

fn coerce(v: Value, target: DataType) -> Result<Value> {
    Ok(match (v, target) {
        (Value::Null, _) => Value::Null,
        (Value::Int64(i), DataType::Float64) => Value::Float64(i as f64),
        (v, DataType::Utf8) if v.data_type() != Some(DataType::Utf8) => Value::Utf8(v.to_string()),
        (v, t) if v.data_type() == Some(t) => v,
        (v, t) => return Err(FeisuError::Execution(format!("cannot coerce {v} to {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parse_nested_structure() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": {"d": "x"}}"#).unwrap();
        assert_eq!(
            doc.get("c").unwrap().get("d"),
            Some(&Json::String("x".into()))
        );
    }

    #[test]
    fn parse_string_escapes() {
        let doc = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(doc, Json::String("a\n\t\"\\Aé".into()));
    }

    #[test]
    fn parse_surrogate_pair() {
        let doc = parse(r#""😀""#).unwrap();
        assert_eq!(doc, Json::String("😀".into()));
    }

    #[test]
    fn parse_rejects_lone_surrogate() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn parse_unicode_passthrough() {
        let doc = parse("\"百度搜索\"").unwrap();
        assert_eq!(doc, Json::String("百度搜索".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn flatten_paths() {
        let doc = parse(r#"{"user": {"id": 7, "tags": ["a", "b"]}, "ok": true}"#).unwrap();
        let flat = flatten(&doc);
        assert_eq!(
            flat,
            vec![
                ("user.id".to_string(), Value::Int64(7)),
                ("user.tags[0]".to_string(), Value::Utf8("a".into())),
                ("user.tags[1]".to_string(), Value::Utf8("b".into())),
                ("ok".to_string(), Value::Bool(true)),
            ]
        );
    }

    #[test]
    fn flatten_number_typing() {
        let doc = parse(r#"{"i": 5, "f": 5.5}"#).unwrap();
        let flat = flatten(&doc);
        assert_eq!(flat[0].1, Value::Int64(5));
        assert_eq!(flat[1].1, Value::Float64(5.5));
    }

    #[test]
    fn documents_to_columns_union_schema() {
        let docs = vec![
            parse(r#"{"a": 1, "b": "x"}"#).unwrap(),
            parse(r#"{"a": 2.5, "c": true}"#).unwrap(),
        ];
        let (schema, columns) = documents_to_columns(&docs).unwrap();
        assert_eq!(schema.len(), 3);
        // `a` saw both Int64 and Float64 → widened to Float64.
        assert_eq!(
            schema.field_by_name("a").unwrap().data_type,
            DataType::Float64
        );
        let a = &columns[schema.index_of("a").unwrap()];
        assert_eq!(a.value(0), Value::Float64(1.0));
        assert_eq!(a.value(1), Value::Float64(2.5));
        // Missing paths are null.
        let b = &columns[schema.index_of("b").unwrap()];
        assert_eq!(b.value(1), Value::Null);
    }

    #[test]
    fn documents_to_columns_mixed_becomes_utf8() {
        let docs = vec![
            parse(r#"{"v": 1}"#).unwrap(),
            parse(r#"{"v": "one"}"#).unwrap(),
        ];
        let (schema, columns) = documents_to_columns(&docs).unwrap();
        assert_eq!(schema.field_by_name("v").unwrap().data_type, DataType::Utf8);
        assert_eq!(columns[0].value(0), Value::Utf8("1".into()));
    }
}
