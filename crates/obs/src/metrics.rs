//! Sharded metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Handles are `Arc`s cached by the caller, so the hot path is a single
//! atomic op with no map lookup. The registry itself is sharded by name
//! hash so concurrent first-touch registration from many leaf servers
//! does not serialize on one lock. Export is hand-rolled JSON text —
//! the build environment vendors no serializer, and the format is small
//! enough that rolling it keeps the crate dependency-free.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;

/// A monotonically increasing named value.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named value that can move both ways (queue depths, cache bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-boundary histogram. `boundaries[i]` is the inclusive upper edge
/// of bucket `i`; one implicit overflow bucket catches the rest. All
/// updates are relaxed atomics — percentiles are estimates by design.
#[derive(Debug)]
pub struct Histogram {
    boundaries: Vec<u64>,
    buckets: Vec<AtomicU64>, // boundaries.len() + 1 (overflow)
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub fn new(boundaries: Vec<u64>) -> Self {
        assert!(
            !boundaries.is_empty(),
            "histogram needs at least one bucket"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        let buckets = (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            boundaries,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Exponential boundaries from 1 µs to ~18 simulated minutes (×2 per
    /// bucket) — a sensible default for simulated-nanosecond latencies.
    pub fn default_time_boundaries() -> Vec<u64> {
        (0..40).map(|i| 1_000u64 << i).collect()
    }

    pub fn observe(&self, v: u64) {
        let idx = self
            .boundaries
            .partition_point(|&b| b < v)
            .min(self.boundaries.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated q-quantile (`0.0..=1.0`) by linear interpolation inside
    /// the owning bucket, clamped to the observed min/max so degenerate
    /// histograms (one sample, one hot bucket) report exact values.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if cum + c >= target {
                let lower = if i == 0 { 0 } else { self.boundaries[i - 1] };
                let upper = if i < self.boundaries.len() {
                    self.boundaries[i]
                } else {
                    max
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - cum) as f64 / c as f64
                };
                let est = lower as f64 + frac * (upper.saturating_sub(lower)) as f64;
                return (est as u64).clamp(min, max);
            }
            cum += c;
        }
        max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            buckets: self
                .boundaries
                .iter()
                .copied()
                .map(Some)
                .chain([None]) // overflow bucket: le = +Inf
                .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
                .filter(|(_, c)| *c > 0)
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram, for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    /// `(upper_bound, count)` for non-empty buckets; `None` bound = +Inf.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// Point-in-time copy of every metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object. Keys are sorted, so equal
    /// snapshots serialize byte-identically (the bench harness diffs
    /// these files across runs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_string(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {v}", json_string(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                json_string(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
            for (j, (le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match le {
                    Some(le) => {
                        let _ = write!(out, "[{le}, {c}]");
                    }
                    None => {
                        let _ = write!(out, "[null, {c}]");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
/// Shared with the Chrome-trace exporter (`crate::trace`).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide metric namespace. Cheap to share (`Arc`), cheap to
/// update (handles are cached `Arc`s over atomics), sharded by metric
/// name so registration does not contend across subsystems.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Callers on hot paths should cache the returned handle.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.shard(name).counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.shard(name).gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Histogram with the default simulated-latency boundaries.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::default_time_boundaries)
    }

    /// Histogram with custom boundaries; the factory only runs on first
    /// registration, later calls return the existing instance unchanged.
    pub fn histogram_with(
        &self,
        name: &str,
        boundaries: impl FnOnce() -> Vec<u64>,
    ) -> Arc<Histogram> {
        let mut map = self.shard(name).histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new(boundaries()));
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().iter() {
                snap.counters.insert(name.clone(), c.get());
            }
            for (name, g) in shard.gauges.lock().iter() {
                snap.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in shard.histograms.lock().iter() {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snap
    }

    /// Convenience: snapshot rendered as JSON text.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("feisu.test.hits");
        let b = reg.counter("feisu.test.hits");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("feisu.test.hits").get(), 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("feisu.test.depth");
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = Histogram::new(vec![10, 100, 1000]);
        h.observe(73);
        assert_eq!(h.p50(), 73);
        assert_eq!(h.p95(), 73);
        assert_eq!(h.p99(), 73);
        assert_eq!(h.quantile(0.0), 73);
        assert_eq!(h.quantile(1.0), 73);
    }

    #[test]
    fn percentiles_order_and_bounds() {
        let h = Histogram::new(Histogram::default_time_boundaries());
        for v in 1..=1000u64 {
            h.observe(v * 1_000); // 1µs .. 1ms
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 250_000 && p50 <= 750_000, "p50 was {p50}");
        assert!(p99 >= 900_000 && p99 <= 1_000_000, "p99 was {p99}");
    }

    #[test]
    fn quantile_edges_empty_extremes_and_single_bucket() {
        // Empty: every quantile is 0 regardless of q.
        let empty = Histogram::new(vec![10, 100]);
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(1.0), 0);
        // Out-of-range q clamps into [0, 1] instead of panicking.
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [20u64, 40, 60, 80] {
            h.observe(v);
        }
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 80, "q=1.0 is the observed max");
        assert_eq!(h.quantile(0.0), h.quantile(f64::EPSILON));
        // Single-bucket histogram: everything lands in one bucket and the
        // estimate stays clamped inside [min, max].
        let one = Histogram::new(vec![1_000_000]);
        for v in [5u64, 500, 900] {
            one.observe(v);
        }
        for q in [0.0, 0.5, 0.95, 1.0] {
            let est = one.quantile(q);
            assert!((5..=900).contains(&est), "q={q} escaped [min,max]: {est}");
        }
        assert_eq!(one.quantile(1.0), 900);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new(Histogram::default_time_boundaries());
        for v in [3u64, 17, 17, 40_000, 2_000_000, 9_000_000_000] {
            h.observe(v);
        }
        let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn snapshot_is_registration_order_independent() {
        // Two registries fed the same metrics in different registration
        // orders must snapshot (and serialize) identically.
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let names = ["z.last", "a.first", "m.middle", "feisu.query.count"];
        for n in names {
            a.counter(n).add(7);
        }
        for n in names.iter().rev() {
            b.counter(n).add(7);
        }
        a.gauge("g.depth").set(3);
        b.gauge("g.depth").set(3);
        a.histogram_with("h.lat", || vec![10, 100]).observe(42);
        b.histogram_with("h.lat", || vec![10, 100]).observe(42);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn overflow_bucket_catches_large_values() {
        let h = Histogram::new(vec![10]);
        h.observe(5);
        h.observe(1_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.snapshot().max, 1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("feisu.test.concurrent");
                    let h = reg.histogram_with("feisu.test.lat", || vec![100, 10_000]);
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe(i % 500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        assert_eq!(reg.counter("feisu.test.concurrent").get(), 80_000);
        assert_eq!(
            reg.histogram_with("feisu.test.lat", Vec::new).count(),
            80_000
        );
    }

    #[test]
    fn snapshot_json_is_sorted_and_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("g.\"quoted\"").set(-3);
        reg.histogram_with("h.lat", || vec![10]).observe(4);
        let json = reg.to_json();
        let a = json.find("a.first").expect("a.first present");
        let b = json.find("b.second").expect("b.second present");
        assert!(a < b, "counters must be name-sorted");
        assert!(json.contains("g.\\\"quoted\\\""));
        assert!(json.contains("\"p50\": 4"));
        // Snapshot of identical state is byte-identical.
        assert_eq!(json, reg.to_json());
    }
}
