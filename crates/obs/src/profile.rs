//! `EXPLAIN ANALYZE`-style per-query profiles.
//!
//! The master builds one [`QueryProfile`] per query from the query's
//! span tree plus a handful of summary lines (counters that do not
//! belong to any single span, like totals across retries). Rendering is
//! plain text, stable across runs (simulated time only), and safe to
//! snapshot in tests.

use crate::span::SpanTree;
use std::fmt;

/// The per-query execution profile attached to every `QueryResult`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Query identifier, as assigned by the master.
    pub query_id: u64,
    /// Summary `key: value` lines rendered above the span tree.
    pub summary: Vec<(String, String)>,
    /// The nested master→stem→leaf execution spans.
    pub tree: SpanTree,
}

impl QueryProfile {
    pub fn new(query_id: u64) -> Self {
        QueryProfile {
            query_id,
            summary: Vec::new(),
            tree: SpanTree::default(),
        }
    }

    pub fn push_summary(&mut self, key: &str, value: impl fmt::Display) {
        self.summary.push((key.to_string(), value.to_string()));
    }

    /// Full text report:
    ///
    /// ```text
    /// EXPLAIN ANALYZE query 42
    ///   tasks: 8 (backup 1)
    ///   bytes read: /hdfs=4.00 MiB local=1.00 MiB
    /// master  [0 ns +12.000 ms] ...
    /// └─ stem  [...]
    ///    ├─ leaf_task  [...]
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE query {}", self.query_id);
        for (k, v) in &self.summary {
            let _ = writeln!(out, "  {k}: {v}");
        }
        out.push_str(&self.tree.render());
        out
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecorder;
    use feisu_common::SimInstant;

    #[test]
    fn renders_header_summary_and_tree() {
        let rec = SpanRecorder::new();
        let root = rec.record("master", None, SimInstant(0), SimInstant(5_000_000));
        rec.record("stem", Some(root), SimInstant(0), SimInstant(4_000_000));
        let mut profile = QueryProfile::new(7);
        profile.push_summary("tasks", 3);
        profile.push_summary("index hits", "2 of 3");
        profile.tree = rec.tree();
        let text = profile.render();
        assert!(text.starts_with("EXPLAIN ANALYZE query 7\n"));
        assert!(text.contains("  tasks: 3\n"));
        assert!(text.contains("  index hits: 2 of 3\n"));
        assert!(text.contains("master"));
        assert!(text.contains("└─ stem"));
    }

    #[test]
    fn default_profile_renders_header_only() {
        let p = QueryProfile::new(1);
        assert_eq!(p.render(), "EXPLAIN ANALYZE query 1\n");
    }
}
