//! feisu-obs: zero-dependency observability for the Feisu engine.
//!
//! Three pieces, all running on the *simulated* clock so output stays
//! deterministic across hosts and runs:
//!
//! - [`metrics`] — a sharded [`MetricsRegistry`] of named counters,
//!   gauges, and fixed-bucket histograms (p50/p95/p99), exportable as
//!   JSON text with no serializer dependency;
//! - [`span`] — a lightweight tracer producing a nested span tree per
//!   query, either via RAII guards (`span!`) against a [`SimTimeSource`]
//!   or by recording explicit simulated start/end instants (how the
//!   engine attributes time it accounts analytically);
//! - [`profile`] — the `EXPLAIN ANALYZE`-style per-query report the
//!   master attaches to every `QueryResult`;
//! - [`event_log`] — the always-on bounded ring buffer of per-query
//!   [`QueryEvent`] records backing the `system.queries` virtual table;
//! - [`window`] — sliding-window rate/percentile views over the
//!   simulated timeline ("QPS and tail latency *right now*");
//! - [`trace`] — a `chrome://tracing` JSON-array exporter for any
//!   query's span tree.
//!
//! The crate deliberately depends only on `feisu-common` and the
//! workspace `parking_lot` shim: observability must be linkable from
//! every layer (storage, index, cluster, core) without cycles.

pub mod event_log;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;
pub mod window;

pub use event_log::{QueryEvent, QueryLog, QueryOutcome};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::QueryProfile;
pub use span::{AttrValue, SimTimeSource, SpanGuard, SpanId, SpanNode, SpanRecorder, SpanTree};
pub use trace::chrome_trace;
pub use window::{WindowSnapshot, WindowedMetrics};
