//! Sliding-window metric views on the simulated clock.
//!
//! The cumulative [`MetricsRegistry`](crate::metrics::MetricsRegistry)
//! answers "how much, ever"; [`WindowedMetrics`] answers "how much
//! *right now*": per-series rate and quantiles over the trailing
//! window of simulated time. Each observation is an `(instant, value)`
//! sample; snapshots consider only samples whose instant falls inside
//! `(now - window, now]`.
//!
//! Determinism: concurrent clients may insert samples in any order, so
//! a snapshot never depends on insertion order — membership is decided
//! purely by each sample's simulated instant, and quantiles are
//! computed over the *sorted* sample values. A race-free workload
//! therefore yields the same snapshot serially and concurrently.

use feisu_common::{SimDuration, SimInstant};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Upper bound on retained samples per series; beyond it the oldest
/// *inserted* sample is dropped (a memory backstop, not a semantic
/// boundary — size it above the window's expected sample count).
const MAX_SAMPLES_PER_SERIES: usize = 65_536;

/// Aggregates over one series' in-window samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Samples inside the window.
    pub count: u64,
    /// `count / window` in events per simulated second.
    pub rate_per_sec: f64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// Named series of `(instant, value)` samples with sliding-window
/// aggregation. All instants are simulated.
#[derive(Debug)]
pub struct WindowedMetrics {
    window: SimDuration,
    series: Mutex<BTreeMap<String, VecDeque<(u64, u64)>>>,
}

impl WindowedMetrics {
    pub fn new(window: SimDuration) -> WindowedMetrics {
        assert!(window > SimDuration::ZERO, "window must be positive");
        WindowedMetrics {
            window,
            series: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records `value` for `name` at simulated instant `at`. Samples
    /// may arrive out of timestamp order (concurrent clients).
    pub fn observe(&self, name: &str, at: SimInstant, value: u64) {
        let mut series = self.series.lock();
        let samples = series.entry(name.to_string()).or_default();
        if samples.len() == MAX_SAMPLES_PER_SERIES {
            samples.pop_front();
        }
        samples.push_back((at.as_nanos(), value));
    }

    /// Window aggregate for one series as of `now`; `None` when the
    /// series has no in-window samples.
    pub fn snapshot_one(&self, name: &str, now: SimInstant) -> Option<WindowSnapshot> {
        let series = self.series.lock();
        let samples = series.get(name)?;
        self.aggregate(samples, now)
    }

    /// All series with in-window samples as of `now`, name-sorted.
    pub fn snapshot(&self, now: SimInstant) -> Vec<(String, WindowSnapshot)> {
        let series = self.series.lock();
        series
            .iter()
            .filter_map(|(name, samples)| self.aggregate(samples, now).map(|w| (name.clone(), w)))
            .collect()
    }

    fn aggregate(&self, samples: &VecDeque<(u64, u64)>, now: SimInstant) -> Option<WindowSnapshot> {
        let cutoff = now.as_nanos().saturating_sub(self.window.as_nanos());
        let mut values: Vec<u64> = samples
            .iter()
            .filter(|(at, _)| *at > cutoff && *at <= now.as_nanos())
            .map(|(_, v)| *v)
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let count = values.len() as u64;
        let q = |q: f64| -> u64 {
            // Nearest-rank on the sorted sample set (exact, not
            // bucket-interpolated: the window holds raw samples).
            let rank = ((q * count as f64).ceil() as usize).max(1);
            values[rank.min(values.len()) - 1]
        };
        Some(WindowSnapshot {
            count,
            rate_per_sec: count as f64 / self.window.as_secs_f64(),
            min: values[0],
            max: *values.last().expect("non-empty"),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimInstant {
        SimInstant(ns)
    }

    #[test]
    fn window_excludes_old_samples() {
        let w = WindowedMetrics::new(SimDuration::secs(1));
        w.observe("lat", at(100), 5);
        w.observe("lat", at(500_000_000), 10);
        w.observe("lat", at(1_200_000_000), 20);
        // As of t=1.3s the first sample (t=100ns) is outside the 1s window.
        let snap = w.snapshot_one("lat", at(1_300_000_000)).unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 10);
        assert_eq!(snap.max, 20);
        assert!((snap.rate_per_sec - 2.0).abs() < 1e-12);
        // Much later the window is empty again.
        assert!(w.snapshot_one("lat", at(10_000_000_000)).is_none());
    }

    #[test]
    fn snapshot_is_insertion_order_insensitive() {
        let a = WindowedMetrics::new(SimDuration::secs(60));
        let b = WindowedMetrics::new(SimDuration::secs(60));
        let samples = [(10u64, 7u64), (20, 3), (30, 9), (40, 1)];
        for (t, v) in samples {
            a.observe("x", at(t), v);
        }
        for (t, v) in samples.iter().rev() {
            b.observe("x", at(*t), *v);
        }
        assert_eq!(a.snapshot(at(100)), b.snapshot(at(100)));
    }

    #[test]
    fn quantiles_use_nearest_rank_on_values() {
        let w = WindowedMetrics::new(SimDuration::secs(10));
        for v in 1..=100u64 {
            w.observe("x", at(v), v);
        }
        let snap = w.snapshot_one("x", at(1000)).unwrap();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50, 50);
        assert_eq!(snap.p95, 95);
        assert_eq!(snap.p99, 99);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let w = WindowedMetrics::new(SimDuration::secs(1));
        w.observe("one", at(10), 42);
        let snap = w.snapshot_one("one", at(20)).unwrap();
        assert_eq!((snap.p50, snap.p95, snap.p99), (42, 42, 42));
        assert_eq!((snap.min, snap.max, snap.count), (42, 42, 1));
    }

    #[test]
    fn snapshot_lists_series_name_sorted() {
        let w = WindowedMetrics::new(SimDuration::secs(1));
        w.observe("zeta", at(5), 1);
        w.observe("alpha", at(5), 1);
        w.observe("mid", at(5), 1);
        let names: Vec<String> = w.snapshot(at(10)).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
