//! Always-on query event log: a bounded ring buffer holding one
//! structured record per query the cluster saw — completed, partial,
//! failed, *and* rejected at admission.
//!
//! The log is the storage layer behind the `system.queries` virtual
//! table, so the record is flat and column-friendly: plain integers on
//! the simulated timeline plus short strings. It is bounded by
//! construction (`query_log_capacity` in `FeisuConfig`): pushing into a
//! full log evicts the oldest record, so the memory footprint is fixed
//! no matter how long the cluster runs.
//!
//! Everything here runs on simulated time and carries only values that
//! are themselves deterministic, so the *set* of records produced by a
//! race-free workload is identical whether clients ran serially or
//! concurrently (order may differ; see the e2e equivalence test).

use parking_lot::Mutex;
use std::collections::VecDeque;

/// How a query left the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Ran to completion over all of its data.
    Completed,
    /// Returned under a time limit with only a fraction of tasks kept.
    Partial,
    /// Admitted but failed during analysis/planning/execution.
    Failed(String),
    /// Turned away by the entry guard (quota, statement size, load).
    Rejected(String),
}

impl QueryOutcome {
    /// Short label, the `outcome` column of `system.queries`.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOutcome::Completed => "completed",
            QueryOutcome::Partial => "partial",
            QueryOutcome::Failed(_) => "failed",
            QueryOutcome::Rejected(_) => "rejected",
        }
    }

    /// The error message for failed/rejected outcomes.
    pub fn error(&self) -> Option<&str> {
        match self {
            QueryOutcome::Failed(e) | QueryOutcome::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

/// One structured record per query. All times are simulated
/// nanoseconds; byte fields count simulated payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEvent {
    pub query_id: u64,
    /// Display form of the issuing user (`user-N`).
    pub user: String,
    pub sql: String,
    pub outcome: QueryOutcome,
    /// Admission instant on the simulated timeline (the query-local
    /// `now` every simulated duration is measured from).
    pub admitted_ns: u64,
    /// Time spent waiting for admission. The current guard admits or
    /// rejects immediately (no queue), so this is 0 today; the field
    /// exists so a queued guard can fill it without a schema change.
    pub admission_wait_ns: u64,
    /// Simulated end-to-end response time.
    pub response_ns: u64,
    /// Leaf tasks executed (including reused/backup tasks).
    pub tasks: u64,
    pub rows_returned: u64,
    /// Bytes read from storage by leaf scans.
    pub bytes_scanned: u64,
    /// Footprint of the final result batch.
    pub bytes_returned: u64,
    /// Simulated bytes shipped leaf→stem during merges.
    pub wire_leaf_stem_bytes: u64,
    /// Simulated bytes shipped rack-stem→DC-stem (zero unless a
    /// topology-shaped merge tree ran three levels deep).
    pub wire_rack_dc_bytes: u64,
    /// Simulated bytes shipped stem→master during finalization.
    pub wire_stem_master_bytes: u64,
    pub index_hits: u64,
    /// Blocks skipped by footer zone maps before any column decode.
    pub blocks_skipped: u64,
    /// Blocks whose column chunks were actually decoded.
    pub blocks_scanned: u64,
    /// Leaf tasks answered from the per-node SSD cache.
    pub cache_hit_tasks: u64,
    /// Leaf tasks answered from memory (task-reuse or memory tier).
    pub memory_served_tasks: u64,
    /// Top-k operators by self time, e.g. `DistributedScan=1.2ms`.
    pub top_operators: String,
}

impl QueryEvent {
    /// A terminal record (rejected / failed before execution): every
    /// execution-side counter is zero.
    pub fn terminal(
        query_id: u64,
        user: String,
        sql: String,
        outcome: QueryOutcome,
        admitted_ns: u64,
    ) -> QueryEvent {
        QueryEvent {
            query_id,
            user,
            sql,
            outcome,
            admitted_ns,
            admission_wait_ns: 0,
            response_ns: 0,
            tasks: 0,
            rows_returned: 0,
            bytes_scanned: 0,
            bytes_returned: 0,
            wire_leaf_stem_bytes: 0,
            wire_rack_dc_bytes: 0,
            wire_stem_master_bytes: 0,
            index_hits: 0,
            blocks_skipped: 0,
            blocks_scanned: 0,
            cache_hit_tasks: 0,
            memory_served_tasks: 0,
            top_operators: String::new(),
        }
    }
}

/// Bounded ring buffer of [`QueryEvent`]s (oldest evicted first).
#[derive(Debug)]
pub struct QueryLog {
    capacity: usize,
    events: Mutex<VecDeque<QueryEvent>>,
}

impl QueryLog {
    /// A log holding at most `capacity` records (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> QueryLog {
        assert!(capacity >= 1, "query log capacity must be >= 1");
        QueryLog {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, event: QueryEvent) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// All retained records, oldest first.
    pub fn snapshot(&self) -> Vec<QueryEvent> {
        self.events.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> QueryEvent {
        QueryEvent::terminal(
            id,
            "user-1".to_string(),
            format!("SELECT {id}"),
            QueryOutcome::Completed,
            id * 10,
        )
    }

    #[test]
    fn log_is_bounded_and_evicts_oldest() {
        let log = QueryLog::new(3);
        for i in 0..10 {
            log.push(ev(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
        let ids: Vec<u64> = log.snapshot().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![7, 8, 9], "oldest records evicted first");
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        let log = QueryLog::new(16);
        for i in [3u64, 1, 2] {
            log.push(ev(i));
        }
        let ids: Vec<u64> = log.snapshot().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn outcome_labels_and_errors() {
        assert_eq!(QueryOutcome::Completed.label(), "completed");
        assert_eq!(QueryOutcome::Partial.label(), "partial");
        let failed = QueryOutcome::Failed("boom".into());
        assert_eq!(failed.label(), "failed");
        assert_eq!(failed.error(), Some("boom"));
        let rejected = QueryOutcome::Rejected("quota".into());
        assert_eq!(rejected.label(), "rejected");
        assert_eq!(rejected.error(), Some("quota"));
        assert_eq!(QueryOutcome::Completed.error(), None);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let log = QueryLog::new(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..100 {
                        log.push(ev(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(log.len(), 8);
    }
}
