//! Chrome-trace export: turns a [`QueryProfile`]'s span tree into the
//! `chrome://tracing` / Perfetto "JSON array" format.
//!
//! Every span becomes one complete event (`"ph": "X"`) with
//! microsecond timestamps on the query-relative simulated timeline.
//! The process id is the query id, so traces from several queries can
//! be concatenated and still group correctly; the thread id is derived
//! from a span's `node` attribute (`node-N` → tid N+1), with tid 0 for
//! master-side spans, so per-node work lands on separate rows in the
//! viewer. Span attributes are exported under `args` as strings.
//!
//! All inputs are simulated, so the exported text is byte-identical
//! across runs and safe to golden-test.

use crate::metrics::json_string;
use crate::profile::QueryProfile;
use crate::span::SpanNode;
use std::fmt::Write as _;

/// Renders the profile's span tree as a Chrome-trace JSON array.
/// The output is loadable as-is in `chrome://tracing` or Perfetto.
pub fn chrome_trace(profile: &QueryProfile) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for root in &profile.tree.roots {
        emit(root, profile.query_id, 0, &mut out, &mut first);
    }
    out.push_str("\n]\n");
    out
}

fn emit(node: &SpanNode, pid: u64, parent_tid: u64, out: &mut String, first: &mut bool) {
    let tid = node
        .attr("node")
        .and_then(|v| tid_of(&v.to_string()))
        .unwrap_or(parent_tid);
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {pid}, \"tid\": {tid}",
        json_string(&node.name),
        micros(node.start.as_nanos()),
        micros(node.duration().as_nanos()),
    );
    if !node.attrs.is_empty() {
        out.push_str(", \"args\": {");
        for (i, (k, v)) in node.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_string(k), json_string(&v.to_string()));
        }
        out.push('}');
    }
    out.push('}');
    for child in &node.children {
        emit(child, pid, tid, out, first);
    }
}

/// `node-N` → tid `N + 1` (tid 0 is reserved for master-side spans).
fn tid_of(node_attr: &str) -> Option<u64> {
    node_attr
        .rsplit('-')
        .next()
        .and_then(|n| n.parse::<u64>().ok())
        .map(|n| n + 1)
}

/// Nanoseconds → microseconds with 3 decimals (Chrome's `ts` unit is
/// µs; fractional digits keep full simulated-ns precision).
fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecorder;
    use feisu_common::SimInstant;

    fn sample_profile() -> QueryProfile {
        let rec = SpanRecorder::new();
        let master = rec.record("master", None, SimInstant(0), SimInstant(12_000_000));
        let stem = rec.record("stem", Some(master), SimInstant(0), SimInstant(9_500_000));
        let leaf = rec.record(
            "leaf_task",
            Some(stem),
            SimInstant(0),
            SimInstant(7_250_500),
        );
        rec.attr(leaf, "node", "node-3");
        rec.attr(leaf, "rows", 128u64);
        let mut profile = QueryProfile::new(42);
        profile.tree = rec.tree();
        profile
    }

    #[test]
    fn exports_one_complete_event_per_span() {
        let json = chrome_trace(&sample_profile());
        assert!(json.starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert!(json.contains("\"name\": \"master\""));
        assert!(json.contains("\"name\": \"stem\""));
        assert!(json.contains("\"name\": \"leaf_task\""));
        // µs timestamps with ns precision: 12_000_000 ns = 12000.000 µs.
        assert!(json.contains("\"dur\": 12000.000"), "{json}");
        assert!(json.contains("\"dur\": 7250.500"), "{json}");
        assert!(json.contains("\"pid\": 42"));
    }

    #[test]
    fn node_attr_maps_to_thread_id() {
        let json = chrome_trace(&sample_profile());
        // node-3 → tid 4; master/stem stay on the master row (tid 0).
        assert!(json.contains("\"tid\": 4"), "{json}");
        assert!(json.contains("\"tid\": 0"), "{json}");
        // Attributes ride along as stringified args.
        assert!(json.contains("\"args\": {\"node\": \"node-3\", \"rows\": \"128\"}"));
    }

    #[test]
    fn empty_profile_is_an_empty_array() {
        let json = chrome_trace(&QueryProfile::new(1));
        assert_eq!(json, "[\n]\n");
    }

    #[test]
    fn names_are_json_escaped() {
        let rec = SpanRecorder::new();
        rec.record("weird\"name", None, SimInstant(0), SimInstant(10));
        let mut profile = QueryProfile::new(9);
        profile.tree = rec.tree();
        let json = chrome_trace(&profile);
        assert!(json.contains("\\\"name\""), "{json}");
    }
}
