//! Lightweight span recording on the simulated clock.
//!
//! Two recording styles serve Feisu's two timing situations:
//!
//! - **Guards** ([`SpanRecorder::enter`] / the [`span!`] macro) bracket
//!   code that runs while the simulated clock is moving (warmup loops,
//!   cluster maintenance driven by `SimClock::advance`).
//! - **Explicit records** ([`SpanRecorder::record`]) attach start/end
//!   instants computed analytically. The engine accounts per-node time
//!   with a serialized-time model rather than letting the clock tick
//!   during execution, so leaf/stem spans are recorded after the fact
//!   from those accounts.
//!
//! Either way the result is one flat arena of spans per query that
//! [`SpanRecorder::tree`] folds into a nested, time-ordered [`SpanTree`].

use feisu_common::{ByteSize, SimDuration, SimInstant};
use parking_lot::Mutex;
use std::fmt;

/// Anything that can tell simulated time. Implemented by
/// `feisu_cluster::SimClock`; tests use hand-rolled manual clocks.
pub trait SimTimeSource {
    fn sim_now(&self) -> SimInstant;
}

/// Index of a span within its recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// Typed attribute values so renders stay human-readable (byte sizes and
/// durations format with units, not raw integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    Str(String),
    Duration(SimDuration),
    Size(ByteSize),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Duration(d) => write!(f, "{d}"),
            AttrValue::Size(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<SimDuration> for AttrValue {
    fn from(v: SimDuration) -> Self {
        AttrValue::Duration(v)
    }
}

impl From<ByteSize> for AttrValue {
    fn from(v: ByteSize) -> Self {
        AttrValue::Size(v)
    }
}

#[derive(Debug, Clone)]
struct SpanData {
    name: String,
    parent: Option<SpanId>,
    start: SimInstant,
    end: Option<SimInstant>,
    attrs: Vec<(String, AttrValue)>,
}

/// Arena of spans for one query (or one subsystem session).
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Mutex<Vec<SpanData>>,
}

impl SpanRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span at an explicit simulated instant.
    pub fn start(&self, name: &str, parent: Option<SpanId>, at: SimInstant) -> SpanId {
        let mut spans = self.spans.lock();
        let id = SpanId(spans.len());
        spans.push(SpanData {
            name: name.to_string(),
            parent,
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes a span at an explicit simulated instant.
    pub fn end(&self, id: SpanId, at: SimInstant) {
        let mut spans = self.spans.lock();
        let span = &mut spans[id.0];
        debug_assert!(span.end.is_none(), "span {:?} ended twice", span.name);
        span.end = Some(at);
    }

    /// Records a fully-known span in one call — how the engine attaches
    /// analytically-accounted leaf/stem time after a scan completes.
    pub fn record(
        &self,
        name: &str,
        parent: Option<SpanId>,
        start: SimInstant,
        end: SimInstant,
    ) -> SpanId {
        let id = self.start(name, parent, start);
        self.end(id, end);
        id
    }

    /// Attaches a key/value attribute to an open or closed span.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<AttrValue>) {
        let mut spans = self.spans.lock();
        spans[id.0].attrs.push((key.to_string(), value.into()));
    }

    /// Reparents a span. Stems are grouped after their leaves complete,
    /// so leaf spans are recorded first and adopted by the stem later.
    pub fn set_parent(&self, id: SpanId, parent: Option<SpanId>) {
        let mut spans = self.spans.lock();
        debug_assert!(
            parent.is_none_or(|p| p.0 != id.0),
            "span cannot parent itself"
        );
        spans[id.0].parent = parent;
    }

    /// RAII guard bracketing a span with clock reads at entry and drop.
    pub fn enter<'a>(
        &'a self,
        name: &str,
        parent: Option<SpanId>,
        clock: &'a dyn SimTimeSource,
    ) -> SpanGuard<'a> {
        let id = self.start(name, parent, clock.sim_now());
        SpanGuard {
            recorder: self,
            clock,
            id,
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Count of spans with the given name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.lock().iter().filter(|s| s.name == name).count()
    }

    /// Count of spans with the given name carrying the given attribute key.
    pub fn count_named_with_attr(&self, name: &str, attr_key: &str) -> usize {
        self.spans
            .lock()
            .iter()
            .filter(|s| s.name == name && s.attrs.iter().any(|(k, _)| k == attr_key))
            .count()
    }

    /// Folds the arena into a nested tree. Children sort by start instant
    /// (ties broken by recording order); unclosed spans render with zero
    /// duration. Spans whose parent id is unset are roots.
    pub fn tree(&self) -> SpanTree {
        let spans = self.spans.lock();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p.0].push(i),
                None => roots.push(i),
            }
        }
        let sort_key = |&i: &usize| (spans[i].start, i);
        roots.sort_by_key(sort_key);
        for c in &mut children {
            c.sort_by_key(sort_key);
        }

        fn build(i: usize, spans: &[SpanData], children: &[Vec<usize>]) -> SpanNode {
            let s = &spans[i];
            SpanNode {
                name: s.name.clone(),
                start: s.start,
                end: s.end.unwrap_or(s.start),
                attrs: s.attrs.clone(),
                children: children[i]
                    .iter()
                    .map(|&c| build(c, spans, children))
                    .collect(),
            }
        }

        SpanTree {
            roots: roots.iter().map(|&r| build(r, &spans, &children)).collect(),
        }
    }
}

/// Ends its span with a fresh clock read on drop.
pub struct SpanGuard<'a> {
    recorder: &'a SpanRecorder,
    clock: &'a dyn SimTimeSource,
    id: SpanId,
}

impl SpanGuard<'_> {
    pub fn id(&self) -> SpanId {
        self.id
    }

    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        self.recorder.attr(self.id, key, value);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.recorder.end(self.id, self.clock.sim_now());
    }
}

/// Opens a guard-scoped span: `span!(recorder, clock, "name")`, or
/// `span!(recorder, clock, "name", parent = id)` to nest explicitly.
#[macro_export]
macro_rules! span {
    ($rec:expr, $clock:expr, $name:expr) => {
        $rec.enter($name, None, $clock)
    };
    ($rec:expr, $clock:expr, $name:expr, parent = $parent:expr) => {
        $rec.enter($name, Some($parent), $clock)
    };
}

/// One node of the folded tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: String,
    pub start: SimInstant,
    pub end: SimInstant,
    pub attrs: Vec<(String, AttrValue)>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// First attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, is_root: bool) {
        use std::fmt::Write as _;
        let (branch, next_prefix) = if is_root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let _ = write!(
            out,
            "{branch}{}  [{} +{}]",
            self.name,
            SimDuration(self.start.as_nanos()),
            self.duration()
        );
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &next_prefix, i + 1 == n, false);
        }
    }
}

/// The nested, time-ordered spans of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    pub roots: Vec<SpanNode>,
}

impl SpanTree {
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// All nodes matching `name`, depth-first.
    pub fn find_all(&self, name: &str) -> Vec<&SpanNode> {
        fn walk<'a>(node: &'a SpanNode, name: &str, out: &mut Vec<&'a SpanNode>) {
            if node.name == name {
                out.push(node);
            }
            for c in &node.children {
                walk(c, name, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, name, &mut out);
        }
        out
    }

    pub fn max_depth(&self) -> usize {
        fn depth(node: &SpanNode) -> usize {
            1 + node.children.iter().map(depth).max().unwrap_or(0)
        }
        self.roots.iter().map(depth).max().unwrap_or(0)
    }

    /// ASCII rendering, one span per line:
    /// `name  [start +duration] key=value ...`
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            root.render_into(&mut out, "", true, true);
        }
        out
    }
}

impl fmt::Display for SpanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// Manually-advanced test clock.
    struct ManualClock(Cell<u64>);

    impl ManualClock {
        fn new() -> Self {
            ManualClock(Cell::new(0))
        }
        fn advance(&self, ns: u64) {
            self.0.set(self.0.get() + ns);
        }
    }

    impl SimTimeSource for ManualClock {
        fn sim_now(&self) -> SimInstant {
            SimInstant(self.0.get())
        }
    }

    #[test]
    fn guards_nest_and_time_with_the_clock() {
        let rec = SpanRecorder::new();
        let clock = ManualClock::new();
        {
            let root = span!(rec, &clock, "master");
            clock.advance(100);
            {
                let stem = span!(rec, &clock, "stem", parent = root.id());
                clock.advance(40);
                {
                    let leaf = span!(rec, &clock, "leaf", parent = stem.id());
                    leaf.attr("rows", 7u64);
                    clock.advance(10);
                }
            }
            clock.advance(5);
        }
        let tree = rec.tree();
        assert_eq!(tree.max_depth(), 3);
        let master = tree.find("master").expect("master span");
        assert_eq!(master.start, SimInstant(0));
        assert_eq!(master.duration(), SimDuration(155));
        let stem = tree.find("stem").expect("stem span");
        assert_eq!(stem.start, SimInstant(100));
        assert_eq!(stem.duration(), SimDuration(50));
        let leaf = tree.find("leaf").expect("leaf span");
        assert_eq!(leaf.duration(), SimDuration(10));
        assert_eq!(leaf.attr("rows"), Some(&AttrValue::U64(7)));
    }

    #[test]
    fn children_order_by_start_instant_not_recording_order() {
        let rec = SpanRecorder::new();
        let root = rec.record("master", None, SimInstant(0), SimInstant(100));
        // Recorded out of order on purpose.
        let late = rec.record("leaf_b", Some(root), SimInstant(50), SimInstant(80));
        let early = rec.record("leaf_a", Some(root), SimInstant(10), SimInstant(30));
        rec.attr(late, "n", 2u64);
        rec.attr(early, "n", 1u64);
        let tree = rec.tree();
        let names: Vec<&str> = tree.roots[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["leaf_a", "leaf_b"]);
    }

    #[test]
    fn reparenting_moves_subtrees() {
        let rec = SpanRecorder::new();
        let leaf = rec.record("leaf", None, SimInstant(5), SimInstant(9));
        let stem = rec.record("stem", None, SimInstant(0), SimInstant(10));
        rec.set_parent(leaf, Some(stem));
        let tree = rec.tree();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "stem");
        assert_eq!(tree.roots[0].children[0].name, "leaf");
    }

    #[test]
    fn render_shows_hierarchy_and_attrs() {
        let rec = SpanRecorder::new();
        let root = rec.record("master", None, SimInstant(0), SimInstant(2_000_000));
        let stem = rec.record("stem", Some(root), SimInstant(0), SimInstant(1_500_000));
        let l1 = rec.record("leaf", Some(stem), SimInstant(0), SimInstant(1_000_000));
        rec.attr(l1, "bytes_read", ByteSize::kib(64));
        rec.record("leaf", Some(stem), SimInstant(200_000), SimInstant(900_000));
        let text = rec.tree().render();
        assert!(text.contains("master"));
        assert!(text.contains("└─ stem"));
        assert!(text.contains("├─ leaf"));
        assert!(text.contains("bytes_read=64.00 KiB"));
    }

    #[test]
    fn counting_helpers() {
        let rec = SpanRecorder::new();
        let a = rec.record("leaf_task", None, SimInstant(0), SimInstant(1));
        rec.record("leaf_task", None, SimInstant(0), SimInstant(1));
        rec.attr(a, "abandoned", 1u64);
        assert_eq!(rec.count_named("leaf_task"), 2);
        assert_eq!(rec.count_named_with_attr("leaf_task", "abandoned"), 1);
        assert_eq!(rec.count_named("stem"), 0);
    }
}
